(* Static verifier for linked RV32IM images — the RISC-V counterpart of
   lib/straight_lint, closing the verifier asymmetry between the two
   back ends.  Where STRAIGHT's invariants are about distances and SPADD
   balance, the RISC-V invariants are the ones a linear-scan register
   allocator can silently violate:

   - every text word decodes, and re-encodes to the identical word
     (field-truncation bugs show up here);
   - branch/jump targets land inside the text section, on a 4-byte
     boundary, and execution cannot fall off the end of .text;
   - no instruction reads a register that is not definitely written on
     every path from its function's entry (the static analogue of a
     liveness bug: a temporary read before any def, or a caller-saved
     register read across a call that clobbers it);
   - callee-saved registers (ra, s0-s11) hold their entry values again
     at every return, either untouched or saved to and restored from a
     private stack slot;
   - sp is adjusted only by `addi sp, sp, imm`, its displacement
     balances to zero on every path to a return, and every sp-relative
     lw/sw stays inside the live frame.

   Functions are identified from call targets: the image entry plus the
   target of every `jal` that writes a register.  Each function is
   analyzed intra-procedurally with calls summarized by the ABI: a call
   preserves sp and s0-s11 (each callee's own traversal proves it),
   defines ra and a0, and clobbers every other caller-saved register.

   Known blind spot, shared with every binary verifier at this level:
   stores through computed pointers are assumed not to alias the stack
   slots holding saved callee-saved registers.  A program whose own
   semantics smash its frame can therefore pass the ABI check while
   still being flagged by the differential fuzzer. *)

module Isa = Riscv_isa.Isa
module Enc = Riscv_isa.Encoding
module Image = Assembler.Image
module IntMap = Map.Make (Int)

type finding = Lint_report.finding = {
  pc : int;
  check : string;
  severity : Lint_report.severity;
  message : string;
  func : string option;
}

let pp_finding = Lint_report.pp_finding

(* ---------- register sets (ABI) ---------- *)

let bit r = 1 lsl r
let mask_of rs = List.fold_left (fun acc r -> acc lor bit r) 0 rs

(* t0-t6: dead at function entry and clobbered by calls. *)
let temp_mask = mask_of [ 5; 6; 7; 28; 29; 30; 31 ]

(* s0-s11: callee-saved. *)
let s_mask = mask_of [ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]

(* Registers a call leaves defined: zero/sp/gp/tp plus the callee-saved
   file.  ra and a0 are re-defined by the call itself; a1-a7 and the
   temporaries come back as garbage. *)
let call_preserved_mask = mask_of [ 0; 2; 3; 4 ] lor s_mask

(* Registers whose entry value must be intact again at every return:
   ra plus s0-s11 (sp is tracked separately as a displacement). *)
let tracked_mask = bit 1 lor s_mask

let all_regs_mask = (1 lsl 32) - 1

(* Everything but the temporaries is considered defined at a function's
   entry: arguments by the caller, callee-saved registers by whoever set
   them last (reading one before writing it is exactly how a prologue
   saves it), sp/ra by the calling sequence. *)
let entry_defined_mask = all_regs_mask land lnot temp_mask

(* ---------- decode phase ---------- *)

(* Decode the whole text section; undecodable slots stay [None]. *)
let decode_text (image : Image.t) :
  Isa.resolved option array * finding list =
  let findings = ref [] in
  let add pc check message =
    findings := Lint_report.finding ~pc ~check message :: !findings
  in
  let insns =
    Array.mapi
      (fun i w ->
         let pc = image.Image.text_base + (4 * i) in
         match Enc.decode w with
         | None ->
           add pc "illegal-opcode"
             (Printf.sprintf "word 0x%08lx has no RV32IM decoding" w);
           None
         | Some insn ->
           (match Enc.encode insn with
            | w' when w' = w -> ()
            | w' ->
              add pc "encode-roundtrip"
                (Printf.sprintf
                   "decoded instruction re-encodes to 0x%08lx, image has 0x%08lx"
                   w' w)
            | exception Enc.Encode_error msg ->
              add pc "encode-roundtrip"
                (Printf.sprintf "decoded instruction does not re-encode: %s" msg));
           Some insn)
      image.Image.text
  in
  (insns, List.rev !findings)

(* [lint_roundtrip image] is the decode/re-encode fidelity check alone
   (the historical [Straight_lint.Lint.lint_riscv_roundtrip]). *)
let lint_roundtrip (image : Image.t) : finding list =
  snd (decode_text image)

(* ---------- CFG helpers ---------- *)

let in_text (len : int) (idx : int) = idx >= 0 && idx < len

let word_target (i : int) (off : int) : int option =
  if off land 3 = 0 then Some (i + (off asr 2)) else None

(* Intra-procedural successor word-indices: calls are summarized (the
   callee is a separate function), `jalr x0, ra, 0` is the return. *)
type succ =
  | Next of int list
  | Return
  | Halt
  | Indirect   (* a jalr we cannot resolve statically *)

let successors (len : int) (i : int) (insn : Isa.resolved) : succ =
  let tgt off = match word_target i off with
    | Some t when in_text len t -> [ t ]
    | _ -> []
  in
  match insn with
  | Isa.Jal (0, off) -> Next (tgt off)
  | Isa.Jal (_, _) -> Next (if in_text len (i + 1) then [ i + 1 ] else [])
  | Isa.Branch (_, _, _, off) ->
    Next ((if in_text len (i + 1) then [ i + 1 ] else []) @ tgt off)
  | Isa.Jalr (0, 1, 0) -> Return
  | Isa.Jalr (_, _, _) -> Indirect
  | Isa.Ebreak -> Halt
  | _ -> Next (if in_text len (i + 1) then [ i + 1 ] else [])

(* ---------- control-sanity checks ---------- *)

let check_targets (image : Image.t) (insns : Isa.resolved option array) :
  finding list =
  let len = Array.length insns in
  let findings = ref [] in
  let add pc check message =
    findings := Lint_report.finding ~pc ~check message :: !findings
  in
  Array.iteri
    (fun i insn ->
       let pc = image.Image.text_base + (4 * i) in
       (match insn with
        | Some (Isa.Jal (_, off)) | Some (Isa.Branch (_, _, _, off)) ->
          let target = pc + off in
          if target < image.Image.text_base || target >= Image.text_end image
          then
            add pc "target-bounds"
              (Printf.sprintf "control target 0x%x outside text [0x%x, 0x%x)"
                 target image.Image.text_base (Image.text_end image))
          else if off land 3 <> 0 then
            add pc "target-align"
              (Printf.sprintf "control target 0x%x is not 4-byte aligned"
                 target)
        | _ -> ());
       (* falling past the last word means fetching outside .text; a
          trailing call falls through when the callee returns *)
       if i = len - 1 then begin
         match insn with
         | None | Some (Isa.Jal (0, _)) | Some (Isa.Jalr _) | Some Isa.Ebreak ->
           ()
         | Some _ ->
           add pc "fall-through"
             "last text instruction can fall through past the end of .text"
       end)
    insns;
  List.rev !findings

(* ---------- function discovery ---------- *)

(* Function entry word-indices: the image entry plus the target of every
   link-writing jal. *)
let function_entries (image : Image.t) (insns : Isa.resolved option array) :
  int list =
  let len = Array.length insns in
  let entries = ref [] in
  let add i = if in_text len i && not (List.mem i !entries) then
      entries := i :: !entries
  in
  add ((image.Image.entry - image.Image.text_base) / 4);
  Array.iteri
    (fun i insn ->
       match insn with
       | Some (Isa.Jal (rd, off)) when rd <> 0 ->
         (match word_target i off with Some t -> add t | None -> ())
       | _ -> ())
    insns;
  List.rev !entries

(* Word indices reachable from [entry] without following call edges. *)
let function_body (insns : Isa.resolved option array) (entry : int) :
  (int, unit) Hashtbl.t =
  let len = Array.length insns in
  let body = Hashtbl.create 64 in
  let stack = ref [ entry ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      if in_text len i && not (Hashtbl.mem body i) then begin
        Hashtbl.replace body i ();
        match insns.(i) with
        | None -> ()
        | Some insn ->
          (match successors len i insn with
           | Next succ -> List.iter (fun j -> stack := j :: !stack) succ
           | Return | Halt | Indirect -> ())
      end
  done;
  body

(* ---------- reaching definitions on physical registers ---------- *)

(* Must-defined register sets, one forward fixpoint per function: meet
   is intersection, so a register survives only if it is written on
   EVERY path from the entry.  A read outside the set is the static
   analogue of a linear-scan liveness bug. *)
let defined_transfer (insn : Isa.resolved) (defined : int) : int =
  match insn with
  | Isa.Jal (rd, _) when rd <> 0 ->
    (* a call: the callee preserves sp/s-regs, defines ra (the jal) and
       a0 (the return value), and clobbers everything else *)
    (defined land call_preserved_mask) lor bit rd lor bit 10
  | insn ->
    (match Isa.dest insn with
     | Some rd -> defined lor bit rd
     | None -> defined)

let check_uninit (image : Image.t) (insns : Isa.resolved option array)
    (entry : int) (body : (int, unit) Hashtbl.t) : finding list =
  let len = Array.length insns in
  let state : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let join i v =
    let v' =
      match Hashtbl.find_opt state i with
      | Some prev -> prev land v
      | None -> v
    in
    if Hashtbl.find_opt state i <> Some v' then begin
      Hashtbl.replace state i v';
      Queue.push i work
    end
  in
  join entry entry_defined_mask;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    if Hashtbl.mem body i then
      match insns.(i) with
      | None -> ()
      | Some insn ->
        let out = defined_transfer insn (Hashtbl.find state i) in
        (match successors len i insn with
         | Next succ -> List.iter (fun j -> join j out) succ
         | Return | Halt | Indirect -> ())
  done;
  let findings = ref [] in
  Hashtbl.iter
    (fun i () ->
       match insns.(i), Hashtbl.find_opt state i with
       | Some insn, Some defined ->
         let pc = image.Image.text_base + (4 * i) in
         List.iter
           (fun r ->
              if defined land bit r = 0 then
                findings :=
                  Lint_report.finding ~pc ~check:"uninit-read"
                    (Printf.sprintf
                       "reads %s, which is not written on every path from \
                        the function entry at 0x%x"
                       (Isa.reg_name r)
                       (image.Image.text_base + (4 * entry)))
                  :: !findings)
           (List.sort_uniq compare (Isa.sources insn))
       | _ -> ())
    body;
  List.sort (fun a b -> compare a.pc b.pc) !findings

(* ---------- ABI preservation and stack discipline ---------- *)

(* Joint forward analysis per function:

   - [disp]: current sp displacement from the function entry (bytes,
     negative while a frame is open);
   - [pres]: which tracked registers (ra, s0-s11) still hold — or hold
     again — their entry value;
   - [slots]: entry-sp-relative frame offsets known to contain the entry
     value of a tracked register (written by `sw sN, k(sp)` while sN was
     intact; reading one back re-establishes the register).

   Calls keep [disp] and the s-register portion of [pres] (each callee's
   own traversal proves the summary) and clobber ra.  At every return,
   [disp] must be 0 and every tracked register must be present. *)
type astate = {
  disp : int;
  pres : int;
  slots : int IntMap.t;
}

let astate_equal a b =
  a.disp = b.disp && a.pres = b.pres && IntMap.equal ( = ) a.slots b.slots

(* Meet two states flowing into the same point; [None] on an sp
   disagreement (reported by the caller, not propagated further). *)
let astate_meet a b : astate option =
  if a.disp <> b.disp then None
  else
    Some
      { disp = a.disp;
        pres = a.pres land b.pres;
        slots =
          IntMap.merge
            (fun _ x y ->
               match x, y with Some r, Some r' when r = r' -> Some r | _ -> None)
            a.slots b.slots }

let is_tracked r = tracked_mask land bit r <> 0

(* One instruction's effect on the ABI state.  [report] receives the
   per-instruction findings (frame bounds, sp discipline, return-time
   checks) and is a no-op during the fixpoint.  Returns [None] when the
   path ends here (return, halt, undecodable, indirect). *)
let abi_transfer ~(report : string -> string -> unit) (insn : Isa.resolved)
    (st : astate) : astate option =
  let frame_check kind off =
    let addr = st.disp + off in
    if not (st.disp <= addr && addr < 0) then
      report "frame-bounds"
        (Printf.sprintf
           "%s at sp%+d reaches outside the live frame (sp%+d .. sp%+d)" kind
           off 0 (-st.disp))
  in
  match insn with
  | Isa.Alui (Isa.Addi, 2, 2, k) ->
    let disp = st.disp + k in
    if disp > 0 then
      report "stack-imbalance"
        (Printf.sprintf "SP rises %d bytes above its function-entry value" disp);
    (* releasing the frame kills the slots that lived in it *)
    let slots =
      if k > 0 then IntMap.filter (fun addr _ -> addr >= disp) st.slots
      else st.slots
    in
    Some { st with disp; slots }
  | insn when Isa.dest insn = Some 2 ->
    report "sp-discipline"
      "sp is written by something other than `addi sp, sp, imm`";
    None
  | Isa.Sw (rs2, 2, off) ->
    frame_check "store" off;
    let addr = st.disp + off in
    let slots =
      if is_tracked rs2 && st.pres land bit rs2 <> 0 then
        IntMap.add addr rs2 st.slots
      else IntMap.remove addr st.slots
    in
    Some { st with slots }
  | Isa.Lw (rd, 2, off) ->
    frame_check "load" off;
    let addr = st.disp + off in
    let pres =
      match IntMap.find_opt addr st.slots with
      | Some r when r = rd -> st.pres lor bit rd
      | _ -> if is_tracked rd then st.pres land lnot (bit rd) else st.pres
    in
    Some { st with pres }
  | Isa.Jal (rd, _) when rd <> 0 ->
    (* call: ra is overwritten by the jal; the callee's own traversal
       proves sp and s0-s11 come back intact *)
    let pres = st.pres land lnot (bit 1) in
    let pres = if is_tracked rd then pres land lnot (bit rd) else pres in
    Some { st with pres }
  | Isa.Jalr (0, 1, 0) ->
    if st.disp <> 0 then
      report "stack-imbalance"
        (Printf.sprintf "function returns with SP displaced by %d bytes"
           st.disp);
    if st.pres land bit 1 = 0 then
      report "callee-saved-clobbered"
        "function returns with ra not holding its entry value";
    List.iter
      (fun r ->
         if is_tracked r && r <> 1 && st.pres land bit r = 0 then
           report "callee-saved-clobbered"
             (Printf.sprintf
                "function returns with callee-saved %s not holding its \
                 entry value"
                (Isa.reg_name r)))
      [ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ];
    None
  | Isa.Jalr (_, _, _) -> None
  | Isa.Ebreak -> None
  | insn ->
    (match Isa.dest insn with
     | Some rd when is_tracked rd -> Some { st with pres = st.pres land lnot (bit rd) }
     | _ -> Some st)

let check_abi (image : Image.t) (insns : Isa.resolved option array)
    (entry : int) (body : (int, unit) Hashtbl.t) : finding list =
  let len = Array.length insns in
  let no_report _ _ = () in
  let state : (int, astate) Hashtbl.t = Hashtbl.create 64 in
  let conflicts : (int, int * int) Hashtbl.t = Hashtbl.create 4 in
  let work = Queue.create () in
  let join i v =
    match Hashtbl.find_opt state i with
    | None ->
      Hashtbl.replace state i v;
      Queue.push i work
    | Some prev ->
      (match astate_meet prev v with
       | Some met ->
         if not (astate_equal met prev) then begin
           Hashtbl.replace state i met;
           Queue.push i work
         end
       | None ->
         if not (Hashtbl.mem conflicts i) then
           Hashtbl.replace conflicts i (prev.disp, v.disp))
  in
  join entry { disp = 0; pres = tracked_mask; slots = IntMap.empty };
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    if Hashtbl.mem body i then
      match insns.(i) with
      | None -> ()
      | Some insn ->
        (match abi_transfer ~report:no_report insn (Hashtbl.find state i) with
         | None -> ()
         | Some out ->
           (match successors len i insn with
            | Next succ -> List.iter (fun j -> join j out) succ
            | Return | Halt | Indirect -> ()))
  done;
  (* reporting sweep over the fixed point *)
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let add pc check message =
    if not (Hashtbl.mem seen (pc, check, message)) then begin
      Hashtbl.replace seen (pc, check, message) ();
      findings := Lint_report.finding ~pc ~check message :: !findings
    end
  in
  Hashtbl.iter
    (fun i (d1, d2) ->
       add
         (image.Image.text_base + (4 * i))
         "stack-imbalance"
         (Printf.sprintf
            "SP displacement depends on the path taken here (%d vs %d)" d1 d2))
    conflicts;
  Hashtbl.iter
    (fun i () ->
       match insns.(i), Hashtbl.find_opt state i with
       | Some insn, Some st ->
         let pc = image.Image.text_base + (4 * i) in
         ignore (abi_transfer ~report:(add pc) insn st)
       | _ -> ())
    body;
  List.sort (fun a b -> compare (a.pc, a.check) (b.pc, b.check)) !findings

(* ---------- entry point ---------- *)

(* [lint image] runs every check over a linked RV32IM image and returns
   the findings: decode fidelity and control sanity over the whole text
   section, then the dataflow checks function by function. *)
let lint (image : Image.t) : finding list =
  let insns, decode_findings = decode_text image in
  let control_findings = check_targets image insns in
  let per_function =
    List.concat_map
      (fun entry ->
         let body = function_body insns entry in
         check_uninit image insns entry body
         @ check_abi image insns entry body)
      (function_entries image insns)
  in
  decode_findings @ control_findings @ per_function
  |> List.stable_sort (fun a b -> compare (a.pc, a.check) (b.pc, b.check))
