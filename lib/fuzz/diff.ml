(* Differential execution of one MiniC source across every consumer of
   the toolchain:

     reference   SSA interpreter on the unoptimized IR
     interp-opt  SSA interpreter after the optimization pipeline
     straight-*  straight_cc (Raw and RE+, several max_dist) -> assembler
                 -> STRAIGHT ISS
     riscv       riscv_cc -> assembler -> RISC-V ISS

   Three observables are compared against the reference: console (MMIO)
   output, the exit value ([main]'s return), and the final contents of
   every global data symbol (both back ends and the interpreter lay out
   globals identically from [Layout.data_base], so addresses agree). *)

module Ir = Ssa_ir.Ir
module Codegen = Straight_cc.Codegen

type target =
  | Interp_opt
  | Straight of Codegen.opt_level * int   (* level, max_dist *)
  | Riscv

let target_label = function
  | Interp_opt -> "interp-opt"
  | Straight (Codegen.Raw, d) -> Printf.sprintf "straight-raw-%d" d
  | Straight (Codegen.Re_plus, d) -> Printf.sprintf "straight-re+-%d" d
  | Riscv -> "riscv"

let default_targets =
  [ Interp_opt;
    Straight (Codegen.Re_plus, Straight_isa.Isa.max_dist);
    Straight (Codegen.Raw, Straight_isa.Isa.max_dist);
    Straight (Codegen.Re_plus, 31);
    Straight (Codegen.Raw, 31);
    Riscv ]

(* One execution's observables. *)
type exec = {
  output : string;
  exit_value : int32;
  globals : (string * int32 array) list;   (* symbol -> final words *)
}

type divergence = {
  target : string;
  field : string;        (* "output" | "exit" | "mem <sym>[i]" *)
  expected : string;
  actual : string;
}

type outcome =
  | Agree of int                           (* number of executions compared *)
  | Diverged of divergence list
  | Crashed of { target : string; message : string }

(* Global data symbols with their byte addresses and word counts, laid
   out exactly like interp and both back ends lay them out. *)
let global_layout (p : Ir.program) : (string * int * int) list =
  let cursor = ref Assembler.Layout.data_base in
  List.map
    (fun (d : Ir.data_def) ->
       let addr = !cursor in
       let bytes = (4 * List.length d.Ir.words) + d.Ir.extra_bytes in
       cursor := !cursor + bytes;
       (d.Ir.sym, addr, bytes / 4))
    p.Ir.data

(* Every optimized compile in a fuzzing run goes through the checked
   pipeline: the SSA is re-validated after each pass, so a middle-end bug
   surfaces as "pass X broke the IR" at the seed that triggers it instead
   of as a downstream divergence to triage. *)
let frontend ?(optimize = true) (src : string) : Ir.program =
  let p = Wasm.Front.compile_any src in
  if optimize then List.iter Ssa_ir.Passes.checked p.Ir.funcs;
  p

let max_insns = 10_000_000

let globals_of_mem (layout : (string * int * int) list) (mem : Iss.Memory.t) :
  (string * int32 array) list =
  List.map
    (fun (sym, addr, words) ->
       (sym, Array.init words (fun i -> Iss.Memory.read mem (addr + (4 * i)))))
    layout

(* Run one target; exceptions propagate to [check]'s per-target handler. *)
let run_target (src : string) (t : target) : exec =
  match t with
  | Interp_opt ->
    let p = frontend src in
    let s = Ssa_ir.Interp.run_snapshot ~max_steps:max_insns p in
    let layout = global_layout p in
    { output = s.Ssa_ir.Interp.output;
      exit_value = s.Ssa_ir.Interp.ret;
      globals =
        List.map
          (fun (sym, addr, words) ->
             (sym,
              Array.init words (fun i ->
                  s.Ssa_ir.Interp.read_word (addr + (4 * i)))))
          layout }
  | Straight (level, max_dist) ->
    let p = frontend src in
    let config = { Codegen.max_dist; level } in
    let image = Codegen.compile_to_image ~config p in
    let session =
      Iss.Straight_iss.start
        ~config:{ Iss.Straight_iss.default_config with max_insns }
        image
    in
    Iss.Straight_iss.run_session session;
    let r = Iss.Straight_iss.finish session in
    { output = r.Iss.Trace.output;
      exit_value = Iss.Straight_iss.exit_value session;
      globals =
        globals_of_mem (global_layout p)
          (Iss.Straight_iss.session_memory session) }
  | Riscv ->
    let p = frontend src in
    let image = Riscv_cc.Codegen.compile_to_image p in
    let o =
      Iss.Riscv_iss.run_outcome
        ~config:{ Iss.Riscv_iss.default_config with max_insns }
        image
    in
    { output = o.Iss.Riscv_iss.run.Iss.Trace.output;
      exit_value = Iss.Riscv_iss.exit_value o;
      globals = globals_of_mem (global_layout p) o.Iss.Riscv_iss.mem }

let reference (src : string) : exec =
  let p = frontend ~optimize:false src in
  let s = Ssa_ir.Interp.run_snapshot ~max_steps:max_insns p in
  let layout = global_layout p in
  { output = s.Ssa_ir.Interp.output;
    exit_value = s.Ssa_ir.Interp.ret;
    globals =
      List.map
        (fun (sym, addr, words) ->
           (sym,
            Array.init words (fun i ->
                s.Ssa_ir.Interp.read_word (addr + (4 * i)))))
        layout }

let compare_execs ~(label : string) (ref_e : exec) (e : exec) : divergence list =
  let divs = ref [] in
  let add field expected actual =
    divs := { target = label; field; expected; actual } :: !divs
  in
  if ref_e.output <> e.output then
    add "output" (String.escaped ref_e.output) (String.escaped e.output);
  if ref_e.exit_value <> e.exit_value then
    add "exit"
      (Int32.to_string ref_e.exit_value)
      (Int32.to_string e.exit_value);
  List.iter
    (fun (sym, expected) ->
       match List.assoc_opt sym e.globals with
       | None -> add (Printf.sprintf "mem %s" sym) "present" "missing"
       | Some actual ->
         Array.iteri
           (fun i w ->
              if i < Array.length actual && actual.(i) <> w then
                add
                  (Printf.sprintf "mem %s[%d]" sym i)
                  (Int32.to_string w)
                  (Int32.to_string actual.(i)))
           expected)
    ref_e.globals;
  List.rev !divs

let exn_message (e : exn) : string =
  match e with
  | Diag.Error d -> Diag.to_string d
  | e -> Printexc.to_string e

(* [check ?targets src] runs the source everywhere and compares the
   observables against the unoptimized-interpreter reference. *)
let check ?(targets = default_targets) (src : string) : outcome =
  match reference src with
  | exception e -> Crashed { target = "reference"; message = exn_message e }
  | ref_e ->
    let rec go n = function
      | [] -> Agree n
      | t :: rest ->
        let label = target_label t in
        (match run_target src t with
         | exception e -> Crashed { target = label; message = exn_message e }
         | e ->
           (match compare_execs ~label ref_e e with
            | [] -> go (n + 1) rest
            | divs -> Diverged divs))
    in
    go 1 targets

(* [check_seed ?targets seed] generates, renders and checks one random
   program. *)
let check_seed ?targets (seed : int) : Gen.prog * string * outcome =
  let prog = Gen.generate seed in
  let src = Gen.render prog in
  (prog, src, check ?targets src)

let pp_divergence fmt (d : divergence) =
  Format.fprintf fmt "%s: %s: expected %s, got %s" d.target d.field d.expected
    d.actual
