(* Seeded random MiniC program generator.

   Programs are generated into a small structured AST (not raw text) so
   the shrinker can delete and simplify statements; [render] turns it
   into MiniC source for the toolchain.

   Termination is guaranteed by construction:
   - the only loop form is `for (int lv = 0; lv < k; lv = lv + 1)` with a
     constant bound k and a loop variable no generated statement assigns;
   - helper functions only call helpers defined strictly before them, so
     the call graph is acyclic;
   - division and remainder are safe because the shared semantics define
     x/0 and x%0 (RV32M rules), so any operand is fine;
   - array indices are masked to the (power-of-two) array length.

   Shift amounts are deliberately drawn well outside [0,31] some of the
   time: shift-by->=32 must agree between the interpreter, both
   back-ends and both ISSes (the RV32IM encoder used to truncate them
   silently). *)

type expr =
  | Const of int32
  | Var of string
  | Bin of string * expr * expr        (* rendered operator *)
  | Un of string * expr
  | Idx of string * int * expr         (* array, length mask, index *)
  | CallH of string * expr list
  | Tern of expr * expr * expr

type stmt =
  | Assign of string * expr
  | Store of string * int * expr * expr  (* array, mask, index, value *)
  | Print of expr
  | If of expr * stmt list * stmt list
  | Loop of string * int * stmt list     (* loop var, constant bound *)

type helper = {
  hname : string;
  hparams : string list;
  hlocals : (string * expr) list;
  hbody : stmt list;
  hret : expr;
}

type prog = {
  globals : (string * int32) list;     (* int g = c; *)
  arrays : (string * int) list;        (* int a[n];  n a power of two *)
  helpers : helper list;
  locals : (string * expr) list;       (* main's int x = e; *)
  body : stmt list;
  ret : expr;
}

(* ---------- generation ---------- *)

type scope = {
  rng : Rng.t;
  reads : string list;                 (* variables readable here *)
  writes : string list;                (* variables assignable here *)
  arrs : (string * int) list;
  callable : helper list;              (* helpers defined earlier *)
  counter : int ref;                   (* fresh loop-variable names *)
}

let binops =
  [ "+"; "+"; "-"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<<"; ">>";
    "=="; "!="; "<"; "<="; ">"; ">="; "&&"; "||" ]

let shift_amounts = [ 0l; 1l; 2l; 3l; 4l; 7l; 15l; 31l; 32l; 33l; 63l;
                      100l; -1l; -5l ]

let rec gen_expr (s : scope) (depth : int) : expr =
  let atom () =
    if s.reads <> [] && Rng.chance s.rng 55 then Var (Rng.choose s.rng s.reads)
    else Const (Rng.int32 s.rng)
  in
  if depth <= 0 then atom ()
  else
    match Rng.int s.rng 10 with
    | 0 | 1 | 2 -> atom ()
    | 3 | 4 | 5 ->
      let op = Rng.choose s.rng binops in
      let rhs =
        if (op = "<<" || op = ">>") && Rng.chance s.rng 70 then
          Const (Rng.choose s.rng shift_amounts)
        else gen_expr s (depth - 1)
      in
      Bin (op, gen_expr s (depth - 1), rhs)
    | 6 -> Un (Rng.choose s.rng [ "-"; "!"; "~" ], gen_expr s (depth - 1))
    | 7 when s.arrs <> [] ->
      let a, n = Rng.choose s.rng s.arrs in
      Idx (a, n - 1, gen_expr s (depth - 1))
    | 8 when s.callable <> [] ->
      let h = Rng.choose s.rng s.callable in
      CallH (h.hname, List.map (fun _ -> gen_expr s (depth - 1)) h.hparams)
    | 9 ->
      Tern (gen_expr s (depth - 1), gen_expr s (depth - 1),
            gen_expr s (depth - 1))
    | _ -> atom ()

let rec gen_stmts (s : scope) ~(loop_depth : int) ~(budget : int) : stmt list =
  if budget <= 0 then []
  else begin
    let stmt, cost =
      match Rng.int s.rng 100 with
      | k when k < 40 && s.writes <> [] ->
        (Assign (Rng.choose s.rng s.writes, gen_expr s 3), 1)
      | k when k < 55 && s.arrs <> [] ->
        let a, n = Rng.choose s.rng s.arrs in
        (Store (a, n - 1, gen_expr s 2, gen_expr s 3), 1)
      | k when k < 70 ->
        (Print (gen_expr s 2), 1)
      | k when k < 85 ->
        let cond = gen_expr s 2 in
        let t = gen_stmts s ~loop_depth ~budget:(budget / 2) in
        let e =
          if Rng.bool s.rng then gen_stmts s ~loop_depth ~budget:(budget / 2)
          else []
        in
        (If (cond, t, e), 1 + List.length t + List.length e)
      | _ when loop_depth < 2 ->
        let lv = Printf.sprintf "lv%d" (incr s.counter; !(s.counter)) in
        let bound = Rng.range s.rng 1 8 in
        let inner = { s with reads = lv :: s.reads } in
        let b =
          gen_stmts inner ~loop_depth:(loop_depth + 1) ~budget:(budget / 2)
        in
        (Loop (lv, bound, b), 2 + List.length b)
      | _ -> (Print (gen_expr s 2), 1)
    in
    stmt :: gen_stmts s ~loop_depth ~budget:(budget - cost)
  end

let gen_helper (rng : Rng.t) (idx : int) (earlier : helper list)
    (arrs : (string * int) list) : helper =
  let hname = Printf.sprintf "h%d" idx in
  let hparams = [ Printf.sprintf "p%d_0" idx; Printf.sprintf "p%d_1" idx ] in
  let nloc = Rng.range rng 0 2 in
  let pre_scope =
    { rng; reads = hparams; writes = []; arrs; callable = earlier;
      counter = ref (idx * 1000) }
  in
  let hlocals =
    List.init nloc (fun i ->
        (Printf.sprintf "t%d_%d" idx i, gen_expr pre_scope 2))
  in
  let names = hparams @ List.map fst hlocals in
  let s = { pre_scope with reads = names; writes = names } in
  let hbody = gen_stmts s ~loop_depth:1 ~budget:(Rng.range rng 0 4) in
  { hname; hparams; hlocals; hbody; hret = gen_expr s 3 }

(* [generate seed] builds a random program, reproducible from the seed. *)
let generate (seed : int) : prog =
  let rng = Rng.make seed in
  let n_globals = Rng.range rng 1 3 in
  let globals =
    List.init n_globals (fun i -> (Printf.sprintf "g%d" i, Rng.int32 rng))
  in
  let n_arrays = Rng.range rng 0 2 in
  let arrays =
    List.init n_arrays (fun i ->
        (Printf.sprintf "arr%d" i, Rng.choose rng [ 8; 16 ]))
  in
  let n_helpers = Rng.range rng 0 2 in
  let helpers =
    List.fold_left
      (fun acc i -> acc @ [ gen_helper rng i acc arrays ])
      []
      (List.init n_helpers (fun i -> i))
  in
  let gnames = List.map fst globals in
  let pre_scope =
    { rng; reads = gnames; writes = []; arrs = arrays; callable = helpers;
      counter = ref 1000000 }
  in
  let n_locals = Rng.range rng 2 4 in
  let locals =
    List.init n_locals (fun i ->
        (Printf.sprintf "v%d" i, gen_expr pre_scope 2))
  in
  let names = gnames @ List.map fst locals in
  let s = { pre_scope with reads = names; writes = names } in
  let body = gen_stmts s ~loop_depth:0 ~budget:(Rng.range rng 4 12) in
  (* make every scalar observable on the console, on top of the final
     memory comparison that covers the arrays *)
  let observers = List.map (fun n -> Print (Var n)) names in
  { globals; arrays; helpers; locals; body = body @ observers;
    ret = gen_expr s 2 }

(* ---------- rendering to MiniC ---------- *)

let render_const (c : int32) : string =
  if c = Int32.min_int then "(-2147483647 - 1)"
  else if Int32.compare c 0l < 0 then Printf.sprintf "(%ld)" c
  else Int32.to_string c

let rec render_expr = function
  | Const c -> render_const c
  | Var v -> v
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (render_expr a) op (render_expr b)
  | Un (op, a) -> Printf.sprintf "(%s%s)" op (render_expr a)
  | Idx (a, mask, e) ->
    Printf.sprintf "%s[(%s) & %d]" a (render_expr e) mask
  | CallH (h, args) ->
    Printf.sprintf "%s(%s)" h (String.concat ", " (List.map render_expr args))
  | Tern (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render_expr c) (render_expr a)
      (render_expr b)

let rec render_stmt (buf : Buffer.t) (indent : string) (st : stmt) : unit =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (indent ^ s ^ "\n")) fmt in
  match st with
  | Assign (v, e) -> line "%s = %s;" v (render_expr e)
  | Store (a, mask, i, e) ->
    line "%s[(%s) & %d] = %s;" a (render_expr i) mask (render_expr e)
  | Print e -> line "putint(%s);" (render_expr e)
  | If (c, t, e) ->
    line "if (%s) {" (render_expr c);
    List.iter (render_stmt buf (indent ^ "  ")) t;
    if e <> [] then begin
      line "} else {";
      List.iter (render_stmt buf (indent ^ "  ")) e
    end;
    line "}"
  | Loop (lv, bound, b) ->
    line "for (int %s = 0; %s < %d; %s = %s + 1) {" lv lv bound lv lv;
    List.iter (render_stmt buf (indent ^ "  ")) b;
    line "}"

let render (p : prog) : string =
  let buf = Buffer.create 1024 in
  (* the global-initializer grammar is just [- NUM]: no parentheses *)
  List.iter
    (fun (g, c) ->
       Buffer.add_string buf (Printf.sprintf "int %s = %ld;\n" g c))
    p.globals;
  List.iter
    (fun (a, n) -> Buffer.add_string buf (Printf.sprintf "int %s[%d];\n" a n))
    p.arrays;
  List.iter
    (fun h ->
       Buffer.add_string buf
         (Printf.sprintf "int %s(%s) {\n" h.hname
            (String.concat ", "
               (List.map (fun p -> "int " ^ p) h.hparams)));
       List.iter
         (fun (t, e) ->
            Buffer.add_string buf
              (Printf.sprintf "  int %s = %s;\n" t (render_expr e)))
         h.hlocals;
       List.iter (render_stmt buf "  ") h.hbody;
       Buffer.add_string buf
         (Printf.sprintf "  return %s;\n}\n" (render_expr h.hret)))
    p.helpers;
  Buffer.add_string buf "int main() {\n";
  List.iter
    (fun (v, e) ->
       Buffer.add_string buf (Printf.sprintf "  int %s = %s;\n" v (render_expr e)))
    p.locals;
  List.iter (render_stmt buf "  ") p.body;
  Buffer.add_string buf (Printf.sprintf "  return %s;\n}\n" (render_expr p.ret));
  Buffer.contents buf
