(* Greedy structural shrinker for generated programs.

   [shrink ~still_fails p] repeatedly applies the first one-step
   reduction whose result still satisfies [still_fails], until no
   reduction does (or the evaluation budget runs out).  Reductions only
   ever delete or simplify, so the process terminates; candidates that
   break scoping (e.g. deleting a still-referenced declaration) simply
   fail the predicate — the caller's failure signature distinguishes the
   original bug from a fresh frontend error — and are skipped. *)

open Gen

(* ---------- variable substitution (for deleting declarations) ---------- *)

let rec subst_expr (name : string) (repl : expr) (e : expr) : expr =
  let s = subst_expr name repl in
  match e with
  | Var v when v = name -> repl
  | Var _ | Const _ -> e
  | Bin (op, a, b) -> Bin (op, s a, s b)
  | Un (op, a) -> Un (op, s a)
  | Idx (a, m, i) -> Idx (a, m, s i)
  | CallH (h, args) -> CallH (h, List.map s args)
  | Tern (c, a, b) -> Tern (s c, s a, s b)

let rec subst_stmt (name : string) (repl : expr) (st : stmt) : stmt =
  let se = subst_expr name repl in
  let ss = List.map (subst_stmt name repl) in
  match st with
  | Assign (v, e) -> Assign (v, se e)
  | Store (a, m, i, e) -> Store (a, m, se i, se e)
  | Print e -> Print (se e)
  | If (c, t, e) -> If (se c, ss t, ss e)
  | Loop (lv, k, b) -> Loop (lv, k, ss b)

(* Replace every call to helper [h] by [repl]. *)
let rec drop_call_expr (h : string) (repl : expr) (e : expr) : expr =
  let s = drop_call_expr h repl in
  match e with
  | CallH (h', _) when h' = h -> repl
  | CallH (h', args) -> CallH (h', List.map s args)
  | Var _ | Const _ -> e
  | Bin (op, a, b) -> Bin (op, s a, s b)
  | Un (op, a) -> Un (op, s a)
  | Idx (a, m, i) -> Idx (a, m, s i)
  | Tern (c, a, b) -> Tern (s c, s a, s b)

let rec drop_call_stmt (h : string) (repl : expr) (st : stmt) : stmt =
  let se = drop_call_expr h repl in
  let ss = List.map (drop_call_stmt h repl) in
  match st with
  | Assign (v, e) -> Assign (v, se e)
  | Store (a, m, i, e) -> Store (a, m, se i, se e)
  | Print e -> Print (se e)
  | If (c, t, e) -> If (se c, ss t, ss e)
  | Loop (lv, k, b) -> Loop (lv, k, ss b)

(* ---------- one-step reductions ---------- *)

(* Replace an expression by a constant or by one of its own subtrees, or
   reduce inside it. *)
let rec expr_reductions (e : expr) : expr list =
  let subs =
    match e with
    | Const _ | Var _ -> []
    | Bin (_, a, b) -> [ a; b ]
    | Un (_, a) -> [ a ]
    | Idx (_, _, i) -> [ i ]
    | CallH (_, args) -> args
    | Tern (c, a, b) -> [ c; a; b ]
  in
  let to_zero = match e with Const 0l -> [] | _ -> [ Const 0l ] in
  let inner =
    match e with
    | Const _ | Var _ -> []
    | Bin (op, a, b) ->
      List.map (fun a' -> Bin (op, a', b)) (expr_reductions a)
      @ List.map (fun b' -> Bin (op, a, b')) (expr_reductions b)
    | Un (op, a) -> List.map (fun a' -> Un (op, a')) (expr_reductions a)
    | Idx (a, m, i) -> List.map (fun i' -> Idx (a, m, i')) (expr_reductions i)
    | CallH (h, args) ->
      List.concat
        (List.mapi
           (fun i a ->
              List.map
                (fun a' ->
                   CallH (h, List.mapi (fun j x -> if i = j then a' else x) args))
                (expr_reductions a))
           args)
    | Tern (c, a, b) ->
      List.map (fun c' -> Tern (c', a, b)) (expr_reductions c)
      @ List.map (fun a' -> Tern (c, a', b)) (expr_reductions a)
      @ List.map (fun b' -> Tern (c, a, b')) (expr_reductions b)
  in
  to_zero @ subs @ inner

let rec stmts_reductions (sts : stmt list) : stmt list list =
  match sts with
  | [] -> []
  | st :: rest ->
    (rest :: List.map (fun sts' -> sts' @ rest) (stmt_unwraps st))
    @ List.map (fun st' -> st' :: rest) (stmt_reductions st)
    @ List.map (fun rest' -> st :: rest') (stmts_reductions rest)

and stmt_reductions (st : stmt) : stmt list =
  match st with
  | Assign (v, e) -> List.map (fun e' -> Assign (v, e')) (expr_reductions e)
  | Store (a, m, i, e) ->
    List.map (fun i' -> Store (a, m, i', e)) (expr_reductions i)
    @ List.map (fun e' -> Store (a, m, i, e')) (expr_reductions e)
  | Print e -> List.map (fun e' -> Print e') (expr_reductions e)
  | If (c, t, e) ->
    List.map (fun c' -> If (c', t, e)) (expr_reductions c)
    @ List.map (fun t' -> If (c, t', e)) (stmts_reductions t)
    @ List.map (fun e' -> If (c, t, e')) (stmts_reductions e)
  | Loop (lv, k, b) ->
    (if k > 1 then [ Loop (lv, 1, b) ] else [])
    @ List.map (fun b' -> Loop (lv, k, b')) (stmts_reductions b)

(* Flattening a control statement into the surrounding list. *)
and stmt_unwraps (st : stmt) : stmt list list =
  match st with
  | If (_, t, e) -> List.filter (fun l -> l <> []) [ t; e ]
  | Loop (lv, _, b) -> [ List.map (subst_stmt lv (Const 0l)) b ]
  | _ -> []

let prog_reductions (p : prog) : prog list =
  (* drop a helper, replacing its calls by 0 *)
  let drop_helper h =
    { p with
      helpers =
        List.filter_map
          (fun h' ->
             if h'.hname = h.hname then None
             else
               Some
                 { h' with
                   hlocals =
                     List.map
                       (fun (t, e) -> (t, drop_call_expr h.hname (Const 0l) e))
                       h'.hlocals;
                   hbody =
                     List.map (drop_call_stmt h.hname (Const 0l)) h'.hbody;
                   hret = drop_call_expr h.hname (Const 0l) h'.hret })
          p.helpers;
      locals =
        List.map (fun (v, e) -> (v, drop_call_expr h.hname (Const 0l) e)) p.locals;
      body = List.map (drop_call_stmt h.hname (Const 0l)) p.body;
      ret = drop_call_expr h.hname (Const 0l) p.ret }
  in
  (* drop a main local, substituting 0 for its uses *)
  let drop_local v =
    { p with
      locals =
        List.filter (fun (v', _) -> v' <> v) p.locals
        |> List.map (fun (v', e) -> (v', subst_expr v (Const 0l) e));
      body = List.map (subst_stmt v (Const 0l)) p.body;
      ret = subst_expr v (Const 0l) p.ret }
  in
  let drop_global g =
    { p with
      globals = List.filter (fun (g', _) -> g' <> g) p.globals;
      locals = List.map (fun (v, e) -> (v, subst_expr g (Const 0l) e)) p.locals;
      helpers =
        List.map
          (fun h ->
             { h with
               hlocals =
                 List.map (fun (t, e) -> (t, subst_expr g (Const 0l) e)) h.hlocals;
               hbody = List.map (subst_stmt g (Const 0l)) h.hbody;
               hret = subst_expr g (Const 0l) h.hret })
          p.helpers;
      body = List.map (subst_stmt g (Const 0l)) p.body;
      ret = subst_expr g (Const 0l) p.ret }
  in
  List.map drop_helper p.helpers
  @ List.map (fun (v, _) -> drop_local v) p.locals
  @ List.map (fun (g, _) -> drop_global g) p.globals
  @ List.map (fun body' -> { p with body = body' }) (stmts_reductions p.body)
  @ List.map (fun r -> { p with ret = r }) (expr_reductions p.ret)
  @ List.concat
      (List.map
         (fun (v, e) ->
            List.map
              (fun e' ->
                 { p with
                   locals =
                     List.map
                       (fun (v', e0) -> if v' = v then (v', e') else (v', e0))
                       p.locals })
              (expr_reductions e))
         p.locals)
  @ List.concat
      (List.mapi
         (fun i h ->
            let with_h h' =
              { p with
                helpers = List.mapi (fun j x -> if i = j then h' else x) p.helpers }
            in
            List.map (fun b' -> with_h { h with hbody = b' })
              (stmts_reductions h.hbody)
            @ List.map (fun r' -> with_h { h with hret = r' })
                (expr_reductions h.hret)
            @ List.concat
                (List.map
                   (fun (t, e) ->
                      List.map
                        (fun e' ->
                           with_h
                             { h with
                               hlocals =
                                 List.map
                                   (fun (t', e0) ->
                                      if t' = t then (t', e') else (t', e0))
                                   h.hlocals })
                        (expr_reductions e))
                   h.hlocals))
         p.helpers)

(* ---------- the greedy loop ---------- *)

(* [shrink ?budget ~still_fails p] greedily minimizes [p].  [budget]
   bounds the number of predicate evaluations (each one is a full
   differential run). *)
let shrink ?(budget = 600) ~(still_fails : prog -> bool) (p : prog) : prog =
  let fuel = ref budget in
  let rec loop p =
    let rec try_candidates = function
      | [] -> p
      | c :: rest ->
        if !fuel <= 0 then p
        else begin
          decr fuel;
          if still_fails c then loop c else try_candidates rest
        end
    in
    try_candidates (prog_reductions p)
  in
  loop p
