(* Seeded random WASM-subset module generator (the WAT twin of Gen).

   Modules are generated into a small structured form so the shrinker
   can delete statements and simplify expressions; [render] turns it
   into WAT for the toolchain.

   Termination is guaranteed by construction, mirroring Gen:
   - the only loop form counts a dedicated counter local from 0 to a
     constant bound; the counter is reset by the loop construct itself
     and no generated statement ever assigns it;
   - helper functions only call helpers with strictly smaller ids, so
     the call graph is acyclic;
   - division/remainder are total (the shared RV32M semantics define
     x/0 and the INT_MIN/-1 overflow case, so the WASM trap cases are
     ordinary values here);
   - memory indices are masked to a 256-word window, well inside the
     one linear-memory page.

   WASM-specific stress beyond what Gen produces: deep operand stacks
   (a [Deep] statement pushes up to 12 values before reducing them),
   `local.tee`, `select`, `i32.eqz`, and unsigned compare/shift
   operators — shapes the MiniC front-end never emits. *)

type expr =
  | Const of int32
  | Local of int                       (* data-local index *)
  | Global of int
  | Bin of string * expr * expr        (* WAT mnemonic *)
  | Eqz of expr
  | Load of expr                       (* word index, masked in render *)
  | Call of int * expr list            (* helper id, args *)
  | Select of expr * expr * expr

type stmt =
  | Set_local of int * expr
  | Tee of int * expr                  (* (drop (local.tee $x e)) *)
  | Set_global of int * expr
  | Store of expr * expr               (* word index, value *)
  | Print of expr
  | If_br of expr * stmt list          (* block guarded by br_if *)
  | Loop of { counter : int; bound : int; body : stmt list }
  | Deep of int * expr list            (* target local <- fold of >=2 pushes *)

(* Helper [h<id>]: [nparams] params then [nlocals] data locals then
   [ncounters] loop counters; returns i32. *)
type helper = {
  hid : int;
  hnparams : int;
  hnlocals : int;
  hncounters : int;
  hbody : stmt list;
  hret : expr;
}

type prog = {
  ginit : int32 list;                  (* mutable globals *)
  helpers : helper list;
  mnlocals : int;
  mncounters : int;
  mbody : stmt list;
  mret : expr;
}

let mem_mask = 255                     (* word-index window: 1 KiB *)

(* ---------- generation ---------- *)

type scope = {
  rng : Rng.t;
  nvars : int;                         (* readable/assignable data locals *)
  nglobals : int;
  helpers : helper list;               (* callable (strictly earlier) *)
  mutable counters : int;              (* loop counters allocated so far *)
}

let binops =
  [ "i32.add"; "i32.sub"; "i32.mul"; "i32.div_s"; "i32.div_u"; "i32.rem_s";
    "i32.rem_u"; "i32.and"; "i32.or"; "i32.xor"; "i32.shl"; "i32.shr_s";
    "i32.shr_u"; "i32.eq"; "i32.ne"; "i32.lt_s"; "i32.lt_u"; "i32.gt_s";
    "i32.gt_u"; "i32.le_s"; "i32.le_u"; "i32.ge_s"; "i32.ge_u" ]

let rec gen_expr (s : scope) (depth : int) : expr =
  let leaf () =
    if s.nvars > 0 && Rng.chance s.rng 45 then Local (Rng.int s.rng s.nvars)
    else if s.nglobals > 0 && Rng.chance s.rng 25 then
      Global (Rng.int s.rng s.nglobals)
    else Const (Rng.int32 s.rng)
  in
  if depth <= 0 || Rng.chance s.rng 25 then leaf ()
  else
    match Rng.int s.rng 10 with
    | 0 | 1 | 2 | 3 ->
      Bin (Rng.choose s.rng binops, gen_expr s (depth - 1),
           gen_expr s (depth - 1))
    | 4 -> Eqz (gen_expr s (depth - 1))
    | 5 -> Load (gen_expr s (depth - 1))
    | 6 when s.helpers <> [] ->
      let h = Rng.choose s.rng s.helpers in
      Call (h.hid, List.init h.hnparams (fun _ -> gen_expr s (depth - 1)))
    | 7 ->
      Select (gen_expr s (depth - 1), gen_expr s (depth - 1),
              gen_expr s (depth - 1))
    | _ ->
      Bin (Rng.choose s.rng binops, gen_expr s (depth - 1),
           gen_expr s (depth - 1))

let rec gen_stmts (s : scope) ~(loop_depth : int) ~(budget : int) : stmt list =
  if budget <= 0 then []
  else
    let st, cost =
      match Rng.int s.rng 12 with
      | 0 | 1 when s.nvars > 0 ->
        (Set_local (Rng.int s.rng s.nvars, gen_expr s 3), 1)
      | 2 when s.nvars > 0 ->
        (Tee (Rng.int s.rng s.nvars, gen_expr s 2), 1)
      | 3 when s.nglobals > 0 ->
        (Set_global (Rng.int s.rng s.nglobals, gen_expr s 3), 1)
      | 4 -> (Store (gen_expr s 2, gen_expr s 3), 1)
      | 5 -> (Print (gen_expr s 3), 1)
      | 6 | 7 when loop_depth < 2 ->
        let counter = s.counters in
        s.counters <- counter + 1;
        let body =
          gen_stmts s ~loop_depth:(loop_depth + 1) ~budget:(budget / 2)
        in
        (Loop { counter; bound = Rng.range s.rng 1 8; body }, 2 + List.length body)
      | 8 ->
        let body =
          gen_stmts s ~loop_depth ~budget:(Stdlib.min 3 (budget - 1))
        in
        (If_br (gen_expr s 2, body), 1 + List.length body)
      | 9 when s.nvars > 0 ->
        (* depth capped so straight-raw at max_dist=31 (the tightest
           oracle target, with no RE+ distance fixing) can still encode
           every source distance: 8 shallow pushes stay under ~24
           instructions of span *)
        let n = Rng.range s.rng 2 8 in
        (Deep
           (Rng.int s.rng s.nvars,
            List.init n (fun _ ->
                gen_expr s (if Rng.chance s.rng 30 then 1 else 0))),
         2)
      | _ -> (Print (gen_expr s 2), 1)
    in
    st :: gen_stmts s ~loop_depth ~budget:(budget - cost)

let gen_helper (rng : Rng.t) (hid : int) ~(nglobals : int)
    (earlier : helper list) : helper =
  let hnparams = Rng.range rng 0 3 in
  let hnlocals = Rng.range rng 1 3 in
  let s =
    { rng; nvars = hnparams + hnlocals; nglobals; helpers = earlier;
      counters = 0 }
  in
  let hbody = gen_stmts s ~loop_depth:0 ~budget:(Rng.range rng 2 6) in
  let hret = gen_expr s 3 in
  { hid; hnparams; hnlocals; hncounters = s.counters; hbody; hret }

let generate (seed : int) : prog =
  let rng = Rng.make seed in
  let nglobals = Rng.range rng 1 3 in
  let ginit = List.init nglobals (fun _ -> Rng.int32 rng) in
  let nhelpers = Rng.range rng 0 3 in
  let helpers = ref [] in
  for hid = 1 to nhelpers do
    helpers := !helpers @ [ gen_helper rng hid ~nglobals !helpers ]
  done;
  let mnlocals = Rng.range rng 2 4 in
  let s =
    { rng; nvars = mnlocals; nglobals; helpers = !helpers; counters = 0 }
  in
  let mbody = gen_stmts s ~loop_depth:0 ~budget:(Rng.range rng 4 10) in
  let mret = gen_expr s 3 in
  { ginit; helpers = !helpers; mnlocals; mncounters = s.counters; mbody; mret }

(* ---------- rendering ---------- *)

let render_const (c : int32) : string =
  (* negative literals render with the sign WAT expects *)
  Int32.to_string c

(* Data local [i] is local index [i]; counter [k] lives after the data
   locals at index [nvars + k]. *)
let rec render_expr ~nvars (e : expr) : string =
  let r = render_expr ~nvars in
  match e with
  | Const c -> Printf.sprintf "(i32.const %s)" (render_const c)
  | Local i -> Printf.sprintf "(local.get %d)" i
  | Global g -> Printf.sprintf "(global.get $g%d)" g
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" op (r a) (r b)
  | Eqz a -> Printf.sprintf "(i32.eqz %s)" (r a)
  | Load idx ->
    Printf.sprintf
      "(i32.load (i32.shl (i32.and %s (i32.const %d)) (i32.const 2)))"
      (r idx) mem_mask
  | Call (h, args) ->
    Printf.sprintf "(call $h%d%s)" h
      (String.concat "" (List.map (fun a -> " " ^ r a) args))
  | Select (a, b, c) -> Printf.sprintf "(select %s %s %s)" (r a) (r b) (r c)

let rec render_stmt (buf : Buffer.t) ~nvars (indent : string) (st : stmt) :
  unit =
  let r = render_expr ~nvars in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (indent ^ s ^ "\n")) fmt in
  match st with
  | Set_local (i, e) -> line "(local.set %d %s)" i (r e)
  | Tee (i, e) -> line "(drop (local.tee %d %s))" i (r e)
  | Set_global (g, e) -> line "(global.set $g%d %s)" g (r e)
  | Store (idx, v) ->
    line "(i32.store (i32.shl (i32.and %s (i32.const %d)) (i32.const 2)) %s)"
      (r idx) mem_mask (r v)
  | Print e -> line "(call $putint %s)" (r e)
  | If_br (c, body) ->
    line "(block";
    (* br_if out when the guard is false: executes body iff c <> 0 *)
    Buffer.add_string buf
      (Printf.sprintf "%s  (br_if 0 (i32.eqz %s))\n" indent (r c));
    List.iter (render_stmt buf ~nvars (indent ^ "  ")) body;
    line ")"
  | Loop { counter; bound; body } ->
    let c = nvars + counter in
    line "(local.set %d (i32.const 0))" c;
    line "(block";
    line "  (loop";
    Buffer.add_string buf
      (Printf.sprintf "%s    (br_if 1 (i32.ge_s (local.get %d) (i32.const %d)))\n"
         indent c bound);
    List.iter (render_stmt buf ~nvars (indent ^ "    ")) body;
    Buffer.add_string buf
      (Printf.sprintf
         "%s    (local.set %d (i32.add (local.get %d) (i32.const 1)))\n"
         indent c c);
    line "    (br 0)";
    line "  )";
    line ")"
  | Deep (target, pushes) ->
    (* flat form: push every term, then reduce with alternating ops —
       the operand stack genuinely reaches depth [length pushes] *)
    List.iter (fun e -> line "%s" (r e)) pushes;
    List.iteri
      (fun i _ -> line "%s" (if i land 1 = 0 then "i32.xor" else "i32.add"))
      (List.tl pushes);
    line "(local.set %d)" target

let render_func (buf : Buffer.t) ~name ~export ~nparams ~nlocals ~ncounters
    ~(body : stmt list) ~(ret : expr) () : unit =
  let nvars = nparams + nlocals in
  Buffer.add_string buf (Printf.sprintf "  (func %s" name);
  (match export with
   | Some e -> Buffer.add_string buf (Printf.sprintf " (export %S)" e)
   | None -> ());
  for _ = 1 to nparams do Buffer.add_string buf " (param i32)" done;
  Buffer.add_string buf " (result i32)";
  for _ = 1 to nlocals + ncounters do
    Buffer.add_string buf " (local i32)"
  done;
  Buffer.add_string buf "\n";
  List.iter (render_stmt buf ~nvars "    ") body;
  Buffer.add_string buf
    (Printf.sprintf "    %s)\n" (render_expr ~nvars ret))

let render (p : prog) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(module\n";
  Buffer.add_string buf
    "  (import \"env\" \"putint\" (func $putint (param i32)))\n";
  Buffer.add_string buf "  (memory 1)\n";
  List.iteri
    (fun i init ->
       Buffer.add_string buf
         (Printf.sprintf "  (global $g%d (mut i32) (i32.const %s))\n" i
            (render_const init)))
    p.ginit;
  List.iter
    (fun h ->
       render_func buf ~name:(Printf.sprintf "$h%d" h.hid) ~export:None
         ~nparams:h.hnparams ~nlocals:h.hnlocals ~ncounters:h.hncounters
         ~body:h.hbody ~ret:h.hret ())
    p.helpers;
  (* main observes every global and the low memory words before
     returning, so state differences become output differences *)
  let observers =
    List.mapi (fun i _ -> Print (Global i)) p.ginit
    @ List.init 4 (fun i -> Print (Load (Const (Int32.of_int i))))
  in
  render_func buf ~name:"$main" ~export:(Some "main") ~nparams:0
    ~nlocals:p.mnlocals ~ncounters:p.mncounters
    ~body:(p.mbody @ observers) ~ret:p.mret ();
  Buffer.add_string buf ")\n";
  Buffer.contents buf

(* ---------- shrinking ---------- *)

(* Greedy structural shrinker, the Gen_wasm analogue of Shrink: try
   whole-statement deletion, expression-to-subtree/constant reduction,
   and helper elimination (calls replaced by a constant), keeping any
   candidate for which [still_fails] holds. *)

let rec subexprs (e : expr) : expr list =
  match e with
  | Const _ | Local _ | Global _ -> []
  | Bin (_, a, b) -> [ a; b ]
  | Eqz a | Load a -> [ a ]
  | Call (_, args) -> args
  | Select (a, b, c) -> [ a; b; c ]

and expr_reductions (e : expr) : expr list =
  let subs = subexprs e in
  let const = match e with Const _ -> [] | _ -> [ Const 1l ] in
  const @ subs
  @ (match e with
     | Bin (op, a, b) ->
       List.map (fun a' -> Bin (op, a', b)) (expr_reductions a)
       @ List.map (fun b' -> Bin (op, a, b')) (expr_reductions b)
     | Eqz a -> List.map (fun a' -> Eqz a') (expr_reductions a)
     | Load a -> List.map (fun a' -> Load a') (expr_reductions a)
     | Select (a, b, c) ->
       List.map (fun a' -> Select (a', b, c)) (expr_reductions a)
       @ List.map (fun b' -> Select (a, b', c)) (expr_reductions b)
     | Call (h, args) ->
       List.concat
         (List.mapi
            (fun i a ->
               List.map
                 (fun a' ->
                    Call (h, List.mapi (fun j x -> if j = i then a' else x) args))
                 (expr_reductions a))
            args)
     | _ -> [])

let stmt_exprs_map (f : expr -> expr) (st : stmt) : stmt =
  match st with
  | Set_local (i, e) -> Set_local (i, f e)
  | Tee (i, e) -> Tee (i, f e)
  | Set_global (g, e) -> Set_global (g, f e)
  | Store (a, b) -> Store (f a, f b)
  | Print e -> Print (f e)
  | If_br (c, body) -> If_br (f c, body)
  | Loop l -> Loop l
  | Deep (t, es) -> Deep (t, List.map f es)

(* One-step reductions of a statement list: drop a statement, flatten a
   control statement into its body, or reduce one expression. *)
let rec stmts_reductions (sts : stmt list) : stmt list list =
  match sts with
  | [] -> []
  | st :: rest ->
    let drop = [ rest ] in
    let flatten =
      match st with
      | If_br (_, body) -> [ body @ rest ]
      | Loop { body; _ } -> [ body @ rest ]
      | Deep (t, e :: _) -> [ Set_local (t, e) :: rest ]
      | _ -> []
    in
    let inner =
      match st with
      | If_br (c, body) ->
        List.map (fun b -> If_br (c, b) :: rest) (stmts_reductions body)
      | Loop ({ body; _ } as l) ->
        List.map (fun b -> Loop { l with body = b } :: rest)
          (stmts_reductions body)
      | Deep (t, es) when List.length es > 2 ->
        List.mapi (fun i _ ->
            Deep (t, List.filteri (fun j _ -> j <> i) es) :: rest)
          es
      | _ -> []
    in
    let exprs =
      (* reduce the first reducible expression inside [st] *)
      let reduced = ref [] in
      let probe e =
        (match expr_reductions e with
         | r :: _ when !reduced = [] -> reduced := [ r ]
         | _ -> ());
        e
      in
      ignore (stmt_exprs_map probe st);
      match !reduced with
      | [ r ] ->
        let used = ref false in
        let replace e =
          if !used then e
          else begin used := true; r end
        in
        [ stmt_exprs_map replace st :: rest ]
      | _ -> []
    in
    drop @ flatten @ inner @ exprs
    @ List.map (fun r -> st :: r) (stmts_reductions rest)

let rec drop_call_expr (h : int) (e : expr) : expr =
  match e with
  | Call (h', _) when h' = h -> Const 1l
  | Bin (op, a, b) -> Bin (op, drop_call_expr h a, drop_call_expr h b)
  | Eqz a -> Eqz (drop_call_expr h a)
  | Load a -> Load (drop_call_expr h a)
  | Call (h', args) -> Call (h', List.map (drop_call_expr h) args)
  | Select (a, b, c) ->
    Select (drop_call_expr h a, drop_call_expr h b, drop_call_expr h c)
  | Const _ | Local _ | Global _ -> e

let rec drop_call_stmt (h : int) (st : stmt) : stmt =
  match st with
  | If_br (c, body) ->
    If_br (drop_call_expr h c, List.map (drop_call_stmt h) body)
  | Loop l -> Loop { l with body = List.map (drop_call_stmt h) l.body }
  | _ -> stmt_exprs_map (drop_call_expr h) st

let prog_reductions (p : prog) : prog list =
  let drop_helper =
    List.map
      (fun (h : helper) ->
         let strip_b = List.map (drop_call_stmt h.hid) in
         { p with
           helpers =
             List.filter_map
               (fun (h' : helper) ->
                  if h'.hid = h.hid then None
                  else
                    Some { h' with hbody = strip_b h'.hbody;
                                   hret = drop_call_expr h.hid h'.hret })
               p.helpers;
           mbody = strip_b p.mbody;
           mret = drop_call_expr h.hid p.mret })
      p.helpers
  in
  let main_bodies =
    List.map (fun b -> { p with mbody = b }) (stmts_reductions p.mbody)
  in
  let main_ret =
    List.map (fun r -> { p with mret = r }) (expr_reductions p.mret)
  in
  let helper_bodies =
    List.concat_map
      (fun (h : helper) ->
         List.map
           (fun b ->
              { p with
                helpers =
                  List.map
                    (fun h' -> if h'.hid = h.hid then { h with hbody = b } else h')
                    p.helpers })
           (stmts_reductions h.hbody))
      p.helpers
  in
  drop_helper @ main_bodies @ main_ret @ helper_bodies

let shrink ?(budget = 400) ~(still_fails : prog -> bool) (p : prog) : prog =
  let tries = ref 0 in
  let rec go p =
    if !tries >= budget then p
    else
      let next =
        List.find_opt
          (fun cand ->
             incr tries;
             !tries < budget && still_fails cand)
          (prog_reductions p)
      in
      match next with Some cand -> go cand | None -> p
  in
  go p
