(* Seeded splitmix64 PRNG (the same generator [Ooo_common.Inject] uses):
   every fuzzing campaign is reproducible from its integer seed alone. *)

type t = { mutable state : int64 }

let make (seed : int) : t = { state = Int64.of_int ((seed * 2) + 1) }

(* splitmix64 step, truncated to a nonnegative OCaml int. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL)

(* [int t n] draws uniformly from [0, n). *)
let int t n = if n <= 0 then 0 else next t mod n

(* [range t lo hi] draws uniformly from [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

let bool t = int t 2 = 1

(* [chance t pct] is true with probability pct/100. *)
let chance t pct = int t 100 < pct

let choose t (l : 'a list) : 'a = List.nth l (int t (List.length l))

(* A full-width int32, biased toward interesting boundary values. *)
let int32 t : int32 =
  if chance t 40 then
    choose t
      [ 0l; 1l; 2l; -1l; -2l; 7l; 8l; 31l; 32l; 33l; 100l; 255l; 256l;
        1000l; 32767l; 32768l; -32768l; -32769l; 65535l; 0xFFFFl;
        Int32.max_int; Int32.min_int; 0x7FFFF000l; -2048l; 2047l; 2048l ]
  else Int32.of_int (next t land 0xFFFFFFFF)
