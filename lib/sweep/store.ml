(* Content-addressed result cache (see store.mli). *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json

let code_digest =
  let d = lazy (Digest.to_hex (Digest.file Sys.executable_name)) in
  fun () -> Lazy.force d

let key (pt : Grid.point) : string =
  let w = pt.Grid.workload in
  let manifest =
    String.concat "\n"
      [ "straight-sweep-key/2";
        Params.digest pt.Grid.params;
        Straight_core.Experiment.target_label pt.Grid.target;
        w.Workloads.name;
        string_of_int w.Workloads.iterations;
        Digest.to_hex (Digest.string w.Workloads.source);
        (match pt.Grid.sample with
         | None -> "exact"
         | Some sp -> Sample.Spec.to_string sp);
        code_digest () ]
  in
  Digest.to_hex (Digest.string manifest)

let cache_dir dir = Filename.concat dir "cache"
let path dir k = Filename.concat (cache_dir dir) (k ^ ".json")

let lookup ~dir k : Runner.record option =
  let p = path dir k in
  match In_channel.with_open_text p In_channel.input_all with
  | exception Sys_error _ -> None
  | text ->
    (match Runner.of_json (J.of_string text) with
     | r -> Some { r with Runner.cached = true }
     | exception (J.Parse_error _ | Params.Json_error _) -> None)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir k (r : Runner.record) : unit =
  mkdir_p (cache_dir dir);
  let final = path dir k in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc (J.to_string (Runner.to_json r)));
  Unix.rename tmp final
