(* Content-addressed result cache (see store.mli). *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json

let code_digest =
  let d = lazy (Digest.to_hex (Digest.file Sys.executable_name)) in
  fun () -> Lazy.force d

let key (pt : Grid.point) : string =
  let w = pt.Grid.workload in
  let manifest =
    String.concat "\n"
      [ "straight-sweep-key/2";
        Params.digest pt.Grid.params;
        Straight_core.Experiment.target_label pt.Grid.target;
        w.Workloads.name;
        string_of_int w.Workloads.iterations;
        Digest.to_hex (Digest.string w.Workloads.source);
        (match pt.Grid.sample with
         | None -> "exact"
         | Some sp -> Sample.Spec.to_string sp);
        code_digest () ]
  in
  Digest.to_hex (Digest.string manifest)

let cache_dir dir = Filename.concat dir "cache"
let path dir k = Filename.concat (cache_dir dir) (k ^ ".json")

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---------- stale temp-file hygiene ----------

   [save] writes "<key>.json.tmp.<pid>" then renames.  A writer dying
   between the two (SIGKILL, OOM, power) orphans the temp file forever:
   nothing ever renames or removes it, and only the sweep pool's SIGINT
   path used to clean checkpoint temps.  A temp file is provably stale
   once the pid baked into its name is dead, so each process sweeps a
   directory the first time it touches it (and [sweep_stale] lets the
   resident daemon re-sweep periodically).  Live pids — another sweep
   writing concurrently — are left alone. *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, someone else's *)

(* "<anything>.tmp.<pid>" -> Some pid *)
let tmp_pid name =
  let marker = ".tmp." in
  let ml = String.length marker in
  let n = String.length name in
  let rec find i =
    if i + ml > n then None
    else if String.sub name i ml = marker then
      int_of_string_opt (String.sub name (i + ml) (n - i - ml))
    else find (i + 1)
  in
  find 0

let sweep_dir d =
  match Sys.readdir d with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun acc f ->
         match tmp_pid f with
         | Some pid when pid <> Unix.getpid () && not (pid_alive pid) ->
           (try Sys.remove (Filename.concat d f); acc + 1
            with Sys_error _ -> acc)
         | _ -> acc)
      0 files

let swept : (string, unit) Hashtbl.t = Hashtbl.create 8

let sweep_stale ~dir : int =
  Hashtbl.replace swept (cache_dir dir) ();
  sweep_dir (cache_dir dir)

let sweep_once d =
  if not (Hashtbl.mem swept d) then begin
    Hashtbl.replace swept d ();
    ignore (sweep_dir d)
  end

(* ---------- generic JSON documents (daemon compile cache) ---------- *)

let doc_path ~dir ~sub k = Filename.concat (Filename.concat dir sub) (k ^ ".json")

let lookup_doc ~dir ~sub k : J.t option =
  sweep_once (Filename.concat dir sub);
  match In_channel.with_open_text (doc_path ~dir ~sub k) In_channel.input_all with
  | exception Sys_error _ -> None
  | text ->
    (match J.of_string text with
     | j -> Some j
     | exception J.Parse_error _ -> None)

let save_doc ~dir ~sub k (doc : J.t) : unit =
  let d = Filename.concat dir sub in
  mkdir_p d;
  sweep_once d;
  let final = doc_path ~dir ~sub k in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc (J.to_string doc));
  (* a failed rename (directory removed underneath us, EXDEV, quota)
     must not strand the temp file next to the cache forever *)
  try Unix.rename tmp final
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let lookup ~dir k : Runner.record option =
  sweep_once (cache_dir dir);
  let p = path dir k in
  match In_channel.with_open_text p In_channel.input_all with
  | exception Sys_error _ -> None
  | text ->
    (match Runner.of_json (J.of_string text) with
     | r -> Some { r with Runner.cached = true }
     | exception (J.Parse_error _ | Params.Json_error _) -> None)

let save ~dir k (r : Runner.record) : unit =
  save_doc ~dir ~sub:"cache" k (Runner.to_json r)
