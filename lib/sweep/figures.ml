(* FIGURES.md generation from sweep records (see figures.mli). *)

module R = Runner
module Stats = Ooo_common.Stats

let buf_add = Buffer.add_string

(* distinct values of a projection, in first-seen order *)
let distinct (f : R.record -> 'a) (rs : R.record list) : 'a list =
  List.rev
    (List.fold_left
       (fun acc r -> if List.mem (f r) acc then acc else f r :: acc)
       [] rs)

let find rs ~workload ~machine ~width ~predictor ~ideal =
  List.find_opt
    (fun (r : R.record) ->
       r.R.workload = workload && r.R.machine = machine && r.R.width = width
       && r.R.predictor = predictor && r.R.ideal = ideal)
    rs

let cell_cycles = function
  | Some (r : R.record) -> string_of_int r.R.cycles
  | None -> "—"

(* relative performance (inverse cycles), the paper's Figs. 11-14 metric *)
let cell_rel ~base r =
  match (base, r) with
  | Some (b : R.record), Some (x : R.record) ->
    Printf.sprintf "%.3f" (float_of_int b.R.cycles /. float_of_int x.R.cycles)
  | _ -> "—"

(* ---------- Fig. 12: machine-width sweep ---------- *)

let fig12 b rs =
  buf_add b "## Fig. 12 — machine-width sweep (gshare, real recovery)\n\n";
  buf_add b
    "Relative performance is SS cycles / STRAIGHT cycles at the same\n\
     width (higher favors STRAIGHT).\n\n";
  let widths = List.sort_uniq compare (List.map (fun r -> r.R.width) rs) in
  List.iter
    (fun workload ->
       buf_add b (Printf.sprintf "### %s\n\n" workload);
       buf_add b "| width | SS cycles | STRAIGHT(RE+) cycles | rel. perf |\n";
       buf_add b "|---|---|---|---|\n";
       List.iter
         (fun width ->
            let ss =
              find rs ~workload ~machine:"ss" ~width ~predictor:"gshare"
                ~ideal:false
            in
            let st =
              find rs ~workload ~machine:"straight-re" ~width
                ~predictor:"gshare" ~ideal:false
            in
            buf_add b
              (Printf.sprintf "| %d | %s | %s | %s |\n" width (cell_cycles ss)
                 (cell_cycles st) (cell_rel ~base:ss st)))
         widths;
       buf_add b "\n")
    (distinct (fun r -> r.R.workload) rs)

(* ---------- Fig. 13: ideal-recovery ablation ---------- *)

let fig13 b rs =
  buf_add b "## Fig. 13 — misprediction-penalty (ideal-recovery) ablation\n\n";
  buf_add b
    "`no-penalty` simulates zero-cost recovery; the gap is the cycle\n\
     cost of the machine's recovery mechanism.\n\n";
  buf_add b
    "| workload | machine | width | real cycles | no-penalty cycles | recovery cost |\n";
  buf_add b "|---|---|---|---|---|---|\n";
  List.iter
    (fun workload ->
       List.iter
         (fun machine ->
            List.iter
              (fun width ->
                 let real =
                   find rs ~workload ~machine ~width ~predictor:"gshare"
                     ~ideal:false
                 in
                 let ideal =
                   find rs ~workload ~machine ~width ~predictor:"gshare"
                     ~ideal:true
                 in
                 match (real, ideal) with
                 | Some re, Some id ->
                   buf_add b
                     (Printf.sprintf "| %s | %s | %d | %d | %d | %.1f%% |\n"
                        workload machine width re.R.cycles id.R.cycles
                        (100.
                         *. (float_of_int re.R.cycles
                             /. float_of_int id.R.cycles
                             -. 1.)))
                 | _ -> ())
              (List.sort_uniq compare (List.map (fun r -> r.R.width) rs)))
         (distinct (fun r -> r.R.machine) rs))
    (distinct (fun r -> r.R.workload) rs);
  buf_add b "\n"

(* ---------- Fig. 14: predictor sweep ---------- *)

let fig14 b rs =
  buf_add b "## Fig. 14 — predictor sweep (gshare vs TAGE, real recovery)\n\n";
  buf_add b
    "| workload | machine | width | gshare cycles | TAGE cycles | TAGE gain | mispredicts (gshare → TAGE) |\n";
  buf_add b "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun workload ->
       List.iter
         (fun machine ->
            List.iter
              (fun width ->
                 let g =
                   find rs ~workload ~machine ~width ~predictor:"gshare"
                     ~ideal:false
                 in
                 let t =
                   find rs ~workload ~machine ~width ~predictor:"tage"
                     ~ideal:false
                 in
                 match (g, t) with
                 | Some g, Some t ->
                   buf_add b
                     (Printf.sprintf
                        "| %s | %s | %d | %d | %d | %+.1f%% | %d → %d |\n"
                        workload machine width g.R.cycles t.R.cycles
                        (100.
                         *. (float_of_int g.R.cycles /. float_of_int t.R.cycles
                             -. 1.))
                        g.R.branch_mispredicts t.R.branch_mispredicts)
                 | _ -> ())
              (List.sort_uniq compare (List.map (fun r -> r.R.width) rs)))
         (distinct (fun r -> r.R.machine) rs))
    (distinct (fun r -> r.R.workload) rs);
  buf_add b "\n"

(* ---------- CPI stacks ---------- *)

let cpi_table b rs =
  buf_add b "## CPI stacks (cycles per bucket, every swept point)\n\n";
  buf_add b
    "| workload | model | target | base | frontend | branch_squash | memory | structural | total |\n";
  buf_add b "|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun (r : R.record) ->
       let c = r.R.cpi in
       buf_add b
         (Printf.sprintf "| %s | %s | %s | %d | %d | %d | %d | %d | %d |\n"
            r.R.workload r.R.model r.R.target c.Stats.base c.Stats.frontend
            c.Stats.branch_squash c.Stats.memory c.Stats.structural
            (Stats.cpi_total c)))
    rs;
  buf_add b "\n"

let render (records : Runner.record list) : string =
  let rs = List.sort R.compare_order records in
  let b = Buffer.create 8192 in
  buf_add b "# FIGURES — design-space sweep\n\n";
  buf_add b
    "Generated by `bin/sweep` (see EXPERIMENTS.md, \"Design-space\n\
     sweeps\").  Regenerate with `make sweep-quick`.  Absolute cycle\n\
     counts are from our simulator substrate; the reproduced quantities\n\
     are the relative shapes (see EXPERIMENTS.md).\n\n";
  fig12 b rs;
  fig13 b rs;
  fig14 b rs;
  cpi_table b rs;
  Buffer.contents b
