(** Fork-based self-scheduling worker pool.

    [run ~jobs ~worker ~procs ~on_result ()] forks [procs] workers,
    hands each idle worker the next pending job index over a pipe, and
    collects one result line per job.  Jobs are strings produced by
    [worker] in the child (a compact JSON line in the sweep); the
    parent receives them in completion order via [on_result].

    Fault handling:
    - a job that runs past [timeout] seconds gets its worker killed
      (SIGKILL) and is retried on a fresh worker up to [retries] times;
    - a worker that raises ships the exception text back and the job is
      retried the same way;
    - a worker that dies unexpectedly (EOF on its result pipe) is
      respawned and its in-flight job retried.

    A job whose retries are exhausted is reported as [Error msg].
    [run] returns once every job has a result.  The caller must flush
    [stdout]/[stderr] before calling (children inherit the buffers). *)

val run :
  jobs:int ->
  worker:(int -> string) ->
  procs:int ->
  ?timeout:float ->
  ?retries:int ->
  on_result:(int -> (string, string) result -> unit) ->
  unit ->
  unit
(** @param timeout per-attempt wall-clock budget, seconds (default 600)
    @param retries extra attempts after the first failure (default 1)
    [procs] is clamped to at least 1.  Result strings must be single
    lines; the worker's return value is truncated at the first
    newline. *)
