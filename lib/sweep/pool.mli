(** Fork-based self-scheduling worker pool.

    [run ~jobs ~worker ~procs ~on_result ()] forks [procs] workers,
    hands each idle worker the next pending job index over a pipe, and
    collects one result line per job.  Jobs are strings produced by
    [worker] in the child (a compact JSON line in the sweep); the
    parent receives them in completion order via [on_result].

    Fault handling:
    - a job that runs past [timeout] seconds gets its worker killed
      (SIGKILL) and is retried on a fresh worker up to [retries] times;
    - a worker that raises ships the exception text back and the job is
      retried the same way;
    - a worker that dies unexpectedly (EOF on its result pipe) is
      respawned and its in-flight job retried;
    - each retry waits out a capped exponential backoff
      ([min cap (base * 2^(attempt-1))], jittered deterministically in
      [0.75, 1.25] from the job index and attempt number) before
      becoming eligible again, so a point that dies from transient
      resource pressure does not immediately re-trip it.  Every retry
      is announced through [on_event].

    A job whose retries are exhausted is reported as [Error msg].
    [run] returns once every job has a result.  The caller must flush
    [stdout]/[stderr] before calling (children inherit the buffers).

    Interruption: [run] installs SIGINT/SIGTERM handlers for its
    duration.  On either signal it kills and reaps every worker (no
    orphan processes), runs [on_interrupt] (the caller's chance to
    sweep temp files), restores the previous handlers, and raises
    {!Interrupted} with the signal number — partial results already
    delivered through [on_result] remain valid. *)

exception Interrupted of int
(** Raised out of {!run} after a SIGINT/SIGTERM shutdown; carries the
    signal number (use [128 + Sys.sigint -> exit code] conventions at
    the CLI). *)

(** Scheduling notifications (today: retries). *)
type event =
  | Retry of { job : int; attempt : int; backoff : float; reason : string }
      (** [job] will be re-run as attempt [attempt] (1 = first retry)
          after [backoff] seconds, because of [reason]. *)

val run :
  jobs:int ->
  worker:(int -> string) ->
  procs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?on_event:(event -> unit) ->
  ?on_interrupt:(unit -> unit) ->
  on_result:(int -> (string, string) result -> unit) ->
  unit ->
  unit
(** @param timeout per-attempt wall-clock budget, seconds (default 600)
    @param retries extra attempts after the first failure (default 1)
    @param backoff_base first-retry delay, seconds (default 0.25)
    @param backoff_cap backoff ceiling, seconds (default 30)
    [procs] is clamped to at least 1.  Result strings must be single
    lines; the worker's return value is truncated at the first
    newline.
    @raise Interrupted on SIGINT/SIGTERM. *)
