(** Fork-based self-scheduling worker pool.

    [run ~jobs ~worker ~procs ~on_result ()] forks [procs] workers,
    hands each idle worker the next pending job index over a pipe, and
    collects one result line per job.  Jobs are strings produced by
    [worker] in the child (a compact JSON line in the sweep); the
    parent receives them in completion order via [on_result].

    Fault handling:
    - a job that runs past [timeout] seconds gets its worker killed
      (SIGKILL) and is retried on a fresh worker up to [retries] times;
    - a worker that raises ships the exception text back and the job is
      retried the same way;
    - a worker that dies unexpectedly (EOF on its result pipe) is
      respawned and its in-flight job retried;
    - each retry waits out a capped exponential backoff
      ([min cap (base * 2^(attempt-1))], jittered deterministically in
      [0.75, 1.25] from the job index and attempt number) before
      becoming eligible again, so a point that dies from transient
      resource pressure does not immediately re-trip it.  Every retry
      is announced through [on_event].

    A job whose retries are exhausted is reported as [Error msg].
    [run] returns once every job has a result.  The caller must flush
    [stdout]/[stderr] before calling (children inherit the buffers).

    Interruption: [run] installs SIGINT/SIGTERM handlers for its
    duration.  On either signal it kills and reaps every worker (no
    orphan processes), runs [on_interrupt] (the caller's chance to
    sweep temp files), restores the previous handlers, and raises
    {!Interrupted} with the signal number — partial results already
    delivered through [on_result] remain valid.

    Cleanup is unconditional: whatever ends [run] — normal completion,
    {!Interrupted}, or an exception escaping [on_result]/[on_event] —
    every worker is dismissed and reaped and the previous signal
    handlers are restored before the exception propagates. *)

exception Interrupted of int
(** Raised out of {!run} after a SIGINT/SIGTERM shutdown; carries the
    signal number (use [128 + Sys.sigint -> exit code] conventions at
    the CLI). *)

(** Scheduling notifications (today: retries). *)
type event =
  | Retry of { job : int; attempt : int; backoff : float; reason : string }
      (** [job] will be re-run as attempt [attempt] (1 = first retry)
          after [backoff] seconds, because of [reason]. *)

val run :
  jobs:int ->
  worker:(int -> string) ->
  procs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?on_event:(event -> unit) ->
  ?on_interrupt:(unit -> unit) ->
  on_result:(int -> (string, string) result -> unit) ->
  unit ->
  unit
(** @param timeout per-attempt wall-clock budget, seconds (default 600)
    @param retries extra attempts after the first failure (default 1)
    @param backoff_base first-retry delay, seconds (default 0.25)
    @param backoff_cap backoff ceiling, seconds (default 30)
    [procs] is clamped to at least 1.  Result strings must be single
    lines; the worker's return value is truncated at the first
    newline.
    @raise Interrupted on SIGINT/SIGTERM. *)

(** Persistent worker sessions for long-running callers ([straightd]).

    Unlike {!run}, jobs arrive over time and carry a string payload
    (the batch protocol ships only an index because the job list is
    fixed at fork time).  The pool installs no signal handlers and
    never retries — a resident daemon owns its signals and decides
    retry policy per request.  The caller should ignore SIGPIPE for
    the session's lifetime (a worker dying between [submit] and the
    pipe write would otherwise kill the parent); worker loss is
    reported as an [Error] result and the worker respawned. *)
module Persistent : sig
  type t

  val create :
    procs:int ->
    ?at_fork:(unit -> unit) ->
    worker:(string -> string) ->
    unit ->
    t
  (** Fork [max 1 procs] resident workers running [worker] per job.
      [at_fork] runs in each child right after the fork (including
      respawns) — the daemon's chance to close inherited fds (listen
      socket, client connections) so a worker never pins them open. *)

  val procs : t -> int

  val running : t -> int
  (** Workers with a job in flight. *)

  val queued : t -> int
  (** Submitted jobs not yet dispatched. *)

  val result_fds : t -> Unix.file_descr list
  (** Result-pipe fds of busy workers, for the caller's [select]. *)

  val submit : t -> id:int -> string -> unit
  (** Queue a job (payload truncated at the first newline) and dispatch
      it if a worker is idle.  [id] tags the result in {!poll}.
      @raise Invalid_argument after {!shutdown}. *)

  val poll : ?timeout_job:float -> t -> (int * (string, string) result) list
  (** Non-blocking: collect every finished job, respawn dead or
      protocol-violating workers (their in-flight jobs come back as
      [Error]), kill workers whose job ran past [timeout_job] seconds
      (0 = no limit), then dispatch queued jobs onto idle workers. *)

  val shutdown : t -> unit
  (** Dismiss and reap every worker (idle ones exit on EOF, busy ones
      are killed).  Idempotent. *)
end
