(* Sweep orchestration (see driver.mli). *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json

type summary = {
  total : int;
  executed : int;
  cached : int;
  failed : int;
  wall_seconds : float;
}

let sweep ?(procs = 0) ?(timeout = 600.) ?(retries = 1)
    ?(cache_dir = "_sweep") ?(on_record = fun _ -> ()) (spec : Grid.spec) :
  Runner.record list * summary =
  let t0 = Unix.gettimeofday () in
  let points = Array.of_list (Grid.expand spec) in
  let keys = Array.map (fun pt -> Store.key pt) points in
  (* serve the cache first; only the delta reaches the pool *)
  let results : Runner.record option array = Array.make (Array.length points) None in
  let todo = ref [] in
  Array.iteri
    (fun i k ->
       match Store.lookup ~dir:cache_dir k with
       | Some r ->
         results.(i) <- Some r;
         on_record r
       | None -> todo := i :: !todo)
    keys;
  let todo = Array.of_list (List.rev !todo) in
  let cached = Array.length points - Array.length todo in
  let failed = ref 0 in
  let finish i (r : Runner.record) =
    Store.save ~dir:cache_dir keys.(i) r;
    results.(i) <- Some r;
    on_record r
  in
  if Array.length todo > 0 then begin
    if procs <= 0 then
      Array.iter (fun i -> finish i (Runner.run points.(i))) todo
    else begin
      let worker j =
        let r = Runner.run points.(todo.(j)) in
        J.to_string ~indent:false (Runner.to_json r)
      in
      Pool.run ~jobs:(Array.length todo) ~worker ~procs ~timeout ~retries
        ~on_result:(fun j outcome ->
            let i = todo.(j) in
            match outcome with
            | Ok line -> finish i (Runner.of_json (J.of_string line))
            | Error msg ->
              incr failed;
              Printf.eprintf "sweep: point %s/%s failed: %s\n%!"
                points.(i).Grid.params.Params.name
                points.(i).Grid.workload.Workloads.name msg)
        ()
    end
  end;
  let records =
    Array.to_list results |> List.filter_map Fun.id
    |> List.sort Runner.compare_order
  in
  ( records,
    { total = Array.length points;
      executed = Array.length todo - !failed;
      cached;
      failed = !failed;
      wall_seconds = Unix.gettimeofday () -. t0 } )

let spec_to_json (s : Grid.spec) : J.t =
  J.Obj
    [ ("machines",
       J.List (List.map (fun m -> J.Str (Grid.machine_label m)) s.Grid.machines));
      ("widths", J.List (List.map (fun w -> J.Int w) s.Grid.widths));
      ("robs",
       J.List
         (List.map
            (function None -> J.Null | Some n -> J.Int n)
            s.Grid.robs));
      ("scheds",
       J.List
         (List.map
            (function None -> J.Null | Some n -> J.Int n)
            s.Grid.scheds));
      ("predictors",
       J.List
         (List.map
            (fun p -> J.Str (Params.predictor_name p))
            s.Grid.predictors));
      ("ideal", J.List (List.map (fun b -> J.Bool b) s.Grid.ideal));
      ("workloads", J.List (List.map (fun w -> J.Str w) s.Grid.workloads));
      ("quick", J.Bool s.Grid.quick) ]

let to_json (spec : Grid.spec) (s : summary) (records : Runner.record list) :
  J.t =
  J.Obj
    [ ("schema", J.Str "straight-sweep/1");
      ("code_hash", J.Str (Store.code_digest ()));
      ("grid", spec_to_json spec);
      ("summary",
       J.Obj
         [ ("total", J.Int s.total);
           ("executed", J.Int s.executed);
           ("cached", J.Int s.cached);
           ("failed", J.Int s.failed);
           ("wall_seconds", J.Float s.wall_seconds) ]);
      ("records", J.List (List.map Runner.to_json records)) ]
