(* Sweep orchestration (see driver.mli). *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json

type summary = {
  total : int;
  executed : int;
  cached : int;
  failed : int;
  wall_seconds : float;
}

let ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path && not (Sys.file_exists parent) then
      (try Unix.mkdir parent 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* remove torn checkpoint temp files a SIGKILLed worker may have left;
   completed checkpoints (".snap", written atomically) stay — they are
   the resume points.  Temp names are "<key>.snap.tmp.<pid>". *)
let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let clean_ckpt_tmp dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
         if contains_sub ~sub:".snap.tmp." f then
           try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let sweep ?(procs = 0) ?(timeout = 600.) ?(retries = 1)
    ?(cache_dir = "_sweep") ?(checkpoint_every = 20_000)
    ?(on_record = fun _ -> ()) ?(on_retry = fun _ ~attempt:_ ~backoff:_ _ -> ())
    (spec : Grid.spec) : Runner.record list * summary =
  let t0 = Unix.gettimeofday () in
  let points = Array.of_list (Grid.expand spec) in
  let keys = Array.map (fun pt -> Store.key pt) points in
  (* serve the cache first; only the delta reaches the pool *)
  let results : Runner.record option array = Array.make (Array.length points) None in
  let todo = ref [] in
  Array.iteri
    (fun i k ->
       match Store.lookup ~dir:cache_dir k with
       | Some r ->
         results.(i) <- Some r;
         on_record r
       | None -> todo := i :: !todo)
    keys;
  let todo = Array.of_list (List.rev !todo) in
  let cached = Array.length points - Array.length todo in
  let failed = ref 0 in
  let finish i (r : Runner.record) =
    Store.save ~dir:cache_dir keys.(i) r;
    results.(i) <- Some r;
    on_record r
  in
  let ckpt_dir = Filename.concat cache_dir "ckpt" in
  let ckpt_path i = Filename.concat ckpt_dir (keys.(i) ^ ".snap") in
  let drop_ckpt i =
    try Sys.remove (ckpt_path i) with Sys_error _ -> ()
  in
  if Array.length todo > 0 then begin
    if procs <= 0 then
      Array.iter
        (fun i -> finish i (Runner.run ~sample_store:cache_dir points.(i)))
        todo
    else begin
      ensure_dir ckpt_dir;
      let worker j =
        let i = todo.(j) in
        let r =
          if checkpoint_every > 0 then
            Runner.run ~checkpoint:(ckpt_path i) ~checkpoint_every
              ~sample_store:cache_dir points.(i)
          else Runner.run ~sample_store:cache_dir points.(i)
        in
        J.to_string ~indent:false (Runner.to_json r)
      in
      Pool.run ~jobs:(Array.length todo) ~worker ~procs ~timeout ~retries
        ~on_event:(fun (Pool.Retry { job; attempt; backoff; reason }) ->
            on_retry points.(todo.(job)) ~attempt ~backoff reason)
        ~on_interrupt:(fun () -> clean_ckpt_tmp ckpt_dir)
        ~on_result:(fun j outcome ->
            let i = todo.(j) in
            match outcome with
            | Ok line ->
              drop_ckpt i;
              finish i (Runner.of_json (J.of_string line))
            | Error msg ->
              incr failed;
              drop_ckpt i;
              Printf.eprintf "sweep: point %s/%s failed: %s\n%!"
                points.(i).Grid.params.Params.name
                points.(i).Grid.workload.Workloads.name msg)
        ();
      clean_ckpt_tmp ckpt_dir
    end
  end;
  let records =
    Array.to_list results |> List.filter_map Fun.id
    |> List.sort Runner.compare_order
  in
  ( records,
    { total = Array.length points;
      executed = Array.length todo - !failed;
      cached;
      failed = !failed;
      wall_seconds = Unix.gettimeofday () -. t0 } )

let spec_to_json (s : Grid.spec) : J.t =
  J.Obj
    [ ("machines",
       J.List (List.map (fun m -> J.Str (Grid.machine_label m)) s.Grid.machines));
      ("widths", J.List (List.map (fun w -> J.Int w) s.Grid.widths));
      ("robs",
       J.List
         (List.map
            (function None -> J.Null | Some n -> J.Int n)
            s.Grid.robs));
      ("scheds",
       J.List
         (List.map
            (function None -> J.Null | Some n -> J.Int n)
            s.Grid.scheds));
      ("predictors",
       J.List
         (List.map
            (fun p -> J.Str (Params.predictor_name p))
            s.Grid.predictors));
      ("ideal", J.List (List.map (fun b -> J.Bool b) s.Grid.ideal));
      ("workloads", J.List (List.map (fun w -> J.Str w) s.Grid.workloads));
      ("samples",
       J.List
         (List.map
            (function None -> J.Null | Some sp -> Sample.Spec.to_json sp)
            s.Grid.samples));
      ("quick", J.Bool s.Grid.quick) ]

let to_json (spec : Grid.spec) (s : summary) (records : Runner.record list) :
  J.t =
  J.Obj
    [ ("schema", J.Str "straight-sweep/1");
      ("code_hash", J.Str (Store.code_digest ()));
      ("grid", spec_to_json spec);
      ("summary",
       J.Obj
         [ ("total", J.Int s.total);
           ("executed", J.Int s.executed);
           ("cached", J.Int s.cached);
           ("failed", J.Int s.failed);
           ("wall_seconds", J.Float s.wall_seconds) ]);
      ("records", J.List (List.map Runner.to_json records)) ]
