(** Content-addressed on-disk result cache.

    Each finished point is stored as [<dir>/cache/<key>.json] where
    {!key} is the MD5 over everything that determines the simulated
    outcome: the configuration digest ([Params.digest], every model
    field), the workload identity (name, iteration count, and a digest
    of its generated MiniC source), the compile/pipeline target, and a
    digest of the running executable (the "code hash" — any rebuild of
    the simulator invalidates the whole cache, so stale engines can
    never leak cycle counts).  Re-running a sweep therefore simulates
    only the points whose inputs changed. *)

val code_digest : unit -> string
(** MD5 of the running executable (computed once, cached). *)

val key : Grid.point -> string
(** Stable content address (hex). *)

val lookup : dir:string -> string -> Runner.record option
(** [lookup ~dir key] returns the cached record with [cached = true],
    or [None] on a miss or an unreadable/corrupt entry (corrupt entries
    are treated as misses, never fatal). *)

val save : dir:string -> string -> Runner.record -> unit
(** Atomic (write-to-temp + rename) so parallel sweeps and interrupted
    runs can never expose a torn entry. *)
