(** Content-addressed on-disk result cache.

    Each finished point is stored as [<dir>/cache/<key>.json] where
    {!key} is the MD5 over everything that determines the simulated
    outcome: the configuration digest ([Params.digest], every model
    field), the workload identity (name, iteration count, and a digest
    of its generated MiniC source), the compile/pipeline target, and a
    digest of the running executable (the "code hash" — any rebuild of
    the simulator invalidates the whole cache, so stale engines can
    never leak cycle counts).  Re-running a sweep therefore simulates
    only the points whose inputs changed. *)

val code_digest : unit -> string
(** MD5 of the running executable (computed once, cached). *)

val key : Grid.point -> string
(** Stable content address (hex). *)

val lookup : dir:string -> string -> Runner.record option
(** [lookup ~dir key] returns the cached record with [cached = true],
    or [None] on a miss or an unreadable/corrupt entry (corrupt entries
    are treated as misses, never fatal). *)

val save : dir:string -> string -> Runner.record -> unit
(** Atomic (write-to-temp + rename) so parallel sweeps and interrupted
    runs can never expose a torn entry.  If the rename itself fails the
    temp file is unlinked before the error propagates. *)

val sweep_stale : dir:string -> int
(** Remove orphaned ["<key>.json.tmp.<pid>"] entries under
    [<dir>/cache] whose writer pid is dead (a writer killed between the
    temp write and the rename leaves one behind; nothing else ever
    collects it).  Temp files of live pids — concurrent writers — are
    kept.  Returns the number removed.  Every store entry point also
    sweeps a directory the first time this process touches it; this
    function is for long-running callers ([straightd]) that want to
    re-sweep periodically. *)

(** {2 Generic JSON documents}

    The daemon memoizes compile artifacts (and any future non-record
    payload) in the same content-addressed tree, one subdirectory per
    document kind: [<dir>/<sub>/<key>.json].  Same atomicity and
    stale-temp hygiene as the record cache. *)

val lookup_doc : dir:string -> sub:string -> string -> Ooo_common.Stats.Json.t option
(** [None] on a miss or an unparseable entry (treated as a miss). *)

val save_doc : dir:string -> sub:string -> string -> Ooo_common.Stats.Json.t -> unit
