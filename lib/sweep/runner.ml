(* One grid point -> one result record (see runner.mli). *)

module Params = Ooo_common.Params
module Stats = Ooo_common.Stats
module Engine = Ooo_common.Engine
module Exp = Straight_core.Experiment
module J = Stats.Json

type record = {
  model : string;
  target : string;
  workload : string;
  iterations : int;
  machine : string;
  width : int;
  rob : int;
  sched : int;
  predictor : string;
  ideal : bool;
  params_hash : string;
  cycles : int;
  committed : int;
  ipc : float;
  branch_mispredicts : int;
  cpi : Stats.cpi_stack;
  host_seconds : float;
  cached : bool;
  sample : Sample.Spec.t option;
  sample_ci95 : float;
  sample_intervals : int;
}

(* With [checkpoint], the point runs under the snapshot driver: resume
   from the file when it exists (a previous attempt died mid-run),
   checkpoint every [checkpoint_every] cycles while running.  A
   checkpoint the snapshot layer rejects (corrupt, or taken under
   different inputs — possible only if the caller keyed the path wrong,
   since cache keys cover params, workload, and code digest) is deleted
   and the point starts clean rather than wedging every retry. *)
let cpi_zero =
  { Stats.base = 0; frontend = 0; branch_squash = 0; memory = 0;
    structural = 0 }

let base_record (pt : Grid.point) : record =
  let p = pt.Grid.params in
  { model = p.Params.name;
    target = Exp.target_label pt.Grid.target;
    workload = pt.Grid.workload.Workloads.name;
    iterations = pt.Grid.workload.Workloads.iterations;
    machine = Grid.machine_label pt.Grid.machine;
    width = pt.Grid.width;
    rob = p.Params.rob_entries;
    sched = p.Params.scheduler_entries;
    predictor = Params.predictor_name p.Params.predictor;
    ideal = p.Params.ideal_recovery;
    params_hash = Params.digest p;
    cycles = 0;
    committed = 0;
    ipc = 0.;
    branch_mispredicts = 0;
    cpi = cpi_zero;
    host_seconds = 0.;
    cached = false;
    sample = None;
    sample_ci95 = 0.;
    sample_intervals = 0 }

(* A sampled point: materialize (or hit) the interval store under
   [sample_store], simulate every interval sequentially in this worker,
   recombine.  Whole-run cycles are the extrapolated estimate; the CPI
   stack is the recombined per-instruction stack scaled back to cycles.
   Branch-mispredict counts are not collected per interval, so sampled
   records report 0 there. *)
let run_sampled ~sample_store (sp : Sample.Spec.t) (pt : Grid.point) : record =
  let t0 = Unix.gettimeofday () in
  let spec =
    Snapshot.Sim.spec ~model:pt.Grid.params ~target:pt.Grid.target
      pt.Grid.workload
  in
  let plan, _cached = Sample.Interval.materialize ~dir:sample_store spec sp in
  let results =
    List.map
      (fun (e : Sample.Interval.entry) ->
         Sample.Interval.run_file e.Sample.Interval.path)
      plan.Sample.Interval.entries
  in
  let total_insns = plan.Sample.Interval.total_retired in
  let est = Sample.Recombine.recombine ~total_insns results in
  let scale v = int_of_float (Float.round (v *. float_of_int total_insns)) in
  let cpi =
    match est.Sample.Recombine.stack with
    | [ ("base", b); ("frontend", f); ("branch_squash", bs); ("memory", m);
        ("structural", s) ] ->
      { Stats.base = scale b; frontend = scale f; branch_squash = scale bs;
        memory = scale m; structural = scale s }
    | _ -> cpi_zero
  in
  { (base_record pt) with
    cycles = scale est.Sample.Recombine.cpi;
    committed = total_insns;
    ipc = 1.0 /. est.Sample.Recombine.cpi;
    cpi;
    host_seconds = Unix.gettimeofday () -. t0;
    sample = Some sp;
    sample_ci95 = est.Sample.Recombine.ci95;
    sample_intervals = est.Sample.Recombine.intervals }

let run ?checkpoint ?(checkpoint_every = 20_000) ?(sample_store = "_sweep")
    (pt : Grid.point) : record =
  match pt.Grid.sample with
  | Some sp -> run_sampled ~sample_store sp pt
  | None ->
  let p = pt.Grid.params in
  let t0 = Unix.gettimeofday () in
  let r =
    match checkpoint with
    | None -> Exp.run ~model:p ~target:pt.Grid.target pt.Grid.workload
    | Some path ->
      let spec =
        Snapshot.Sim.spec ~model:p ~target:pt.Grid.target pt.Grid.workload
      in
      let go restore_from =
        match
          Snapshot.Sim.run ?restore_from ~checkpoint_every
            ~checkpoint_path:path spec
        with
        | Snapshot.Sim.Completed r -> r
        | Snapshot.Sim.Stopped _ -> assert false (* no stop_at here *)
      in
      (match
         if Sys.file_exists path then
           try Ok (go (Some path))
           with Diag.Error d when d.Diag.code = Diag.Snapshot_error ->
             Error d
         else Ok (go None)
       with
       | Ok r -> r
       | Error _ ->
         (try Sys.remove path with Sys_error _ -> ());
         go None)
  in
  let host_seconds = Unix.gettimeofday () -. t0 in
  { model = p.Params.name;
    target = Exp.target_label pt.Grid.target;
    workload = pt.Grid.workload.Workloads.name;
    iterations = pt.Grid.workload.Workloads.iterations;
    machine = Grid.machine_label pt.Grid.machine;
    width = pt.Grid.width;
    rob = p.Params.rob_entries;
    sched = p.Params.scheduler_entries;
    predictor = Params.predictor_name p.Params.predictor;
    ideal = p.Params.ideal_recovery;
    params_hash = Params.digest p;
    cycles = r.Exp.cycles;
    committed = r.Exp.committed;
    ipc = r.Exp.ipc;
    branch_mispredicts = r.Exp.stats.Engine.branch_mispredicts;
    cpi = r.Exp.stats.Engine.cpi_stack;
    host_seconds;
    cached = false;
    sample = None;
    sample_ci95 = 0.;
    sample_intervals = 0 }

let to_json (r : record) : J.t =
  J.Obj
    ([ ("model", J.Str r.model);
      ("target", J.Str r.target);
      ("workload", J.Str r.workload);
      ("iterations", J.Int r.iterations);
      ("machine", J.Str r.machine);
      ("width", J.Int r.width);
      ("rob", J.Int r.rob);
      ("sched", J.Int r.sched);
      ("predictor", J.Str r.predictor);
      ("ideal", J.Bool r.ideal);
      ("params_hash", J.Str r.params_hash);
      ("cycles", J.Int r.cycles);
      ("committed", J.Int r.committed);
      ("ipc", J.Float r.ipc);
      ("branch_mispredicts", J.Int r.branch_mispredicts);
      ("cpi_stack", Stats.cpi_to_json r.cpi);
      ("host_seconds", J.Float r.host_seconds);
      ("cached", J.Bool r.cached) ]
     @
     (match r.sample with
      | None -> []
      | Some sp ->
        [ ("sample", Sample.Spec.to_json sp);
          ("sample_ci95", J.Float r.sample_ci95);
          ("sample_intervals", J.Int r.sample_intervals) ]))

let jfail fmt = Printf.ksprintf (fun m -> raise (Params.Json_error m)) fmt

let jint name j =
  match J.get_int (J.member name j) with
  | Some n -> n
  | None -> jfail "sweep record: missing int field %S" name

let jstr name j =
  match J.get_string (J.member name j) with
  | Some s -> s
  | None -> jfail "sweep record: missing string field %S" name

let jbool name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | _ -> jfail "sweep record: missing bool field %S" name

let jfloat name j =
  match J.get_float (J.member name j) with
  | Some f -> f
  | None -> jfail "sweep record: missing float field %S" name

let of_json (j : J.t) : record =
  let cpi =
    match J.member "cpi_stack" j with
    | Some c ->
      { Stats.base = jint "base" c;
        frontend = jint "frontend" c;
        branch_squash = jint "branch_squash" c;
        memory = jint "memory" c;
        structural = jint "structural" c }
    | None -> jfail "sweep record: missing field \"cpi_stack\""
  in
  { model = jstr "model" j;
    target = jstr "target" j;
    workload = jstr "workload" j;
    iterations = jint "iterations" j;
    machine = jstr "machine" j;
    width = jint "width" j;
    rob = jint "rob" j;
    sched = jint "sched" j;
    predictor = jstr "predictor" j;
    ideal = jbool "ideal" j;
    params_hash = jstr "params_hash" j;
    cycles = jint "cycles" j;
    committed = jint "committed" j;
    ipc = jfloat "ipc" j;
    branch_mispredicts = jint "branch_mispredicts" j;
    cpi;
    host_seconds = jfloat "host_seconds" j;
    cached = jbool "cached" j;
    sample =
      (match J.member "sample" j with
       | None -> None
       | Some sj ->
         (try Some (Sample.Spec.of_json sj)
          with Sample.Spec.Parse_error m ->
            jfail "sweep record: bad sample spec: %s" m));
    sample_ci95 =
      (match J.get_float (J.member "sample_ci95" j) with
       | Some f -> f
       | None -> 0.);
    sample_intervals =
      (match J.get_int (J.member "sample_intervals" j) with
       | Some n -> n
       | None -> 0) }

let sample_label (r : record) =
  match r.sample with None -> "" | Some sp -> Sample.Spec.to_string sp

let compare_order (a : record) (b : record) =
  compare
    (a.workload, a.machine, a.width, a.predictor, a.ideal, a.rob, a.sched,
     sample_label a)
    (b.workload, b.machine, b.width, b.predictor, b.ideal, b.rob, b.sched,
     sample_label b)
