(* One grid point -> one result record (see runner.mli). *)

module Params = Ooo_common.Params
module Stats = Ooo_common.Stats
module Engine = Ooo_common.Engine
module Exp = Straight_core.Experiment
module J = Stats.Json

type record = {
  model : string;
  target : string;
  workload : string;
  iterations : int;
  machine : string;
  width : int;
  rob : int;
  sched : int;
  predictor : string;
  ideal : bool;
  params_hash : string;
  cycles : int;
  committed : int;
  ipc : float;
  branch_mispredicts : int;
  cpi : Stats.cpi_stack;
  host_seconds : float;
  cached : bool;
}

(* With [checkpoint], the point runs under the snapshot driver: resume
   from the file when it exists (a previous attempt died mid-run),
   checkpoint every [checkpoint_every] cycles while running.  A
   checkpoint the snapshot layer rejects (corrupt, or taken under
   different inputs — possible only if the caller keyed the path wrong,
   since cache keys cover params, workload, and code digest) is deleted
   and the point starts clean rather than wedging every retry. *)
let run ?checkpoint ?(checkpoint_every = 20_000) (pt : Grid.point) : record =
  let p = pt.Grid.params in
  let t0 = Unix.gettimeofday () in
  let r =
    match checkpoint with
    | None -> Exp.run ~model:p ~target:pt.Grid.target pt.Grid.workload
    | Some path ->
      let spec =
        Snapshot.Sim.spec ~model:p ~target:pt.Grid.target pt.Grid.workload
      in
      let go restore_from =
        match
          Snapshot.Sim.run ?restore_from ~checkpoint_every
            ~checkpoint_path:path spec
        with
        | Snapshot.Sim.Completed r -> r
        | Snapshot.Sim.Stopped _ -> assert false (* no stop_at here *)
      in
      (match
         if Sys.file_exists path then
           try Ok (go (Some path))
           with Diag.Error d when d.Diag.code = Diag.Snapshot_error ->
             Error d
         else Ok (go None)
       with
       | Ok r -> r
       | Error _ ->
         (try Sys.remove path with Sys_error _ -> ());
         go None)
  in
  let host_seconds = Unix.gettimeofday () -. t0 in
  { model = p.Params.name;
    target = Exp.target_label pt.Grid.target;
    workload = pt.Grid.workload.Workloads.name;
    iterations = pt.Grid.workload.Workloads.iterations;
    machine = Grid.machine_label pt.Grid.machine;
    width = pt.Grid.width;
    rob = p.Params.rob_entries;
    sched = p.Params.scheduler_entries;
    predictor = Params.predictor_name p.Params.predictor;
    ideal = p.Params.ideal_recovery;
    params_hash = Params.digest p;
    cycles = r.Exp.cycles;
    committed = r.Exp.committed;
    ipc = r.Exp.ipc;
    branch_mispredicts = r.Exp.stats.Engine.branch_mispredicts;
    cpi = r.Exp.stats.Engine.cpi_stack;
    host_seconds;
    cached = false }

let to_json (r : record) : J.t =
  J.Obj
    [ ("model", J.Str r.model);
      ("target", J.Str r.target);
      ("workload", J.Str r.workload);
      ("iterations", J.Int r.iterations);
      ("machine", J.Str r.machine);
      ("width", J.Int r.width);
      ("rob", J.Int r.rob);
      ("sched", J.Int r.sched);
      ("predictor", J.Str r.predictor);
      ("ideal", J.Bool r.ideal);
      ("params_hash", J.Str r.params_hash);
      ("cycles", J.Int r.cycles);
      ("committed", J.Int r.committed);
      ("ipc", J.Float r.ipc);
      ("branch_mispredicts", J.Int r.branch_mispredicts);
      ("cpi_stack", Stats.cpi_to_json r.cpi);
      ("host_seconds", J.Float r.host_seconds);
      ("cached", J.Bool r.cached) ]

let jfail fmt = Printf.ksprintf (fun m -> raise (Params.Json_error m)) fmt

let jint name j =
  match J.get_int (J.member name j) with
  | Some n -> n
  | None -> jfail "sweep record: missing int field %S" name

let jstr name j =
  match J.get_string (J.member name j) with
  | Some s -> s
  | None -> jfail "sweep record: missing string field %S" name

let jbool name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | _ -> jfail "sweep record: missing bool field %S" name

let jfloat name j =
  match J.get_float (J.member name j) with
  | Some f -> f
  | None -> jfail "sweep record: missing float field %S" name

let of_json (j : J.t) : record =
  let cpi =
    match J.member "cpi_stack" j with
    | Some c ->
      { Stats.base = jint "base" c;
        frontend = jint "frontend" c;
        branch_squash = jint "branch_squash" c;
        memory = jint "memory" c;
        structural = jint "structural" c }
    | None -> jfail "sweep record: missing field \"cpi_stack\""
  in
  { model = jstr "model" j;
    target = jstr "target" j;
    workload = jstr "workload" j;
    iterations = jint "iterations" j;
    machine = jstr "machine" j;
    width = jint "width" j;
    rob = jint "rob" j;
    sched = jint "sched" j;
    predictor = jstr "predictor" j;
    ideal = jbool "ideal" j;
    params_hash = jstr "params_hash" j;
    cycles = jint "cycles" j;
    committed = jint "committed" j;
    ipc = jfloat "ipc" j;
    branch_mispredicts = jint "branch_mispredicts" j;
    cpi;
    host_seconds = jfloat "host_seconds" j;
    cached = jbool "cached" j }

let compare_order (a : record) (b : record) =
  compare
    (a.workload, a.machine, a.width, a.predictor, a.ideal, a.rob, a.sched)
    (b.workload, b.machine, b.width, b.predictor, b.ideal, b.rob, b.sched)
