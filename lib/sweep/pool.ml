(* Fork-based self-scheduling worker pool (see pool.mli).

   Parent/worker protocol, one line each way per job:

     parent -> worker:  "<job index>\n"
     worker -> parent:  "ok <idx> <payload>\n"  |  "err <idx> <msg>\n"

   The payload is produced in the child, so it must be newline-free
   (the sweep ships compact JSON); [String.escaped] guards the error
   path.  Workers are stateless between jobs — all job data lives in
   the [worker] closure, which the child inherits through fork — so a
   killed worker is replaced by simply forking again. *)

type worker_slot = {
  pid : int;
  job_fd : Unix.file_descr;       (* raw write end, for sibling cleanup *)
  job_w : out_channel;            (* parent writes job indices *)
  res_fd : Unix.file_descr;       (* select()able result pipe *)
  res_ic : in_channel;
  mutable current : int option;   (* in-flight job index *)
  mutable started : float;
}

let oneline s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

(* [siblings] are the parent's pipe ends for the other live workers:
   fork duplicates them into the child, and a child holding a copy of a
   sibling's job-pipe write end would keep that sibling alive past the
   parent's close (no EOF ever arrives), so the child drops them all
   before entering its job loop. *)
let spawn ~(siblings : Unix.file_descr list) (worker : int -> string) :
  worker_slot =
  let jr, jw = Unix.pipe ~cloexec:false () in
  let rr, rw = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close jw;
    Unix.close rr;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      siblings;
    let ic = Unix.in_channel_of_descr jr in
    let oc = Unix.out_channel_of_descr rw in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        let idx = int_of_string (String.trim line) in
        let reply =
          match worker idx with
          | payload -> Printf.sprintf "ok %d %s" idx (oneline payload)
          | exception e ->
            Printf.sprintf "err %d %s" idx
              (String.escaped (Printexc.to_string e))
        in
        output_string oc (reply ^ "\n");
        flush oc;
        loop ()
    in
    (try loop () with _ -> ());
    (* _exit: skip at_exit/buffer flushing inherited from the parent *)
    Unix._exit 0
  | pid ->
    Unix.close jr;
    Unix.close rw;
    { pid;
      job_fd = jw;
      job_w = Unix.out_channel_of_descr jw;
      res_fd = rr;
      res_ic = Unix.in_channel_of_descr rr;
      current = None;
      started = 0. }

let dismiss (w : worker_slot) ~kill =
  if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try close_out w.job_w with Sys_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  try close_in w.res_ic with Sys_error _ -> ()

let sibling_fds workers =
  List.concat_map (fun w -> [ w.job_fd; w.res_fd ]) workers

let run ~jobs ~(worker : int -> string) ~procs ?(timeout = 600.) ?(retries = 1)
    ~(on_result : int -> (string, string) result -> unit) () : unit =
  let procs = max 1 (min procs (max 1 jobs)) in
  (* a worker killed between select() and the parent's write must not
     SIGPIPE the parent; the write path handles the EPIPE instead *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let pending = Queue.create () in
  for i = 0 to jobs - 1 do
    Queue.add (i, 0) pending
  done;
  let attempts = Array.make (max 1 jobs) 0 in
  let done_count = ref 0 in
  let workers = ref [] in
  for _ = 1 to procs do
    workers := spawn ~siblings:(sibling_fds !workers) worker :: !workers
  done;
  let assign w =
    match Queue.take_opt pending with
    | None -> ()
    | Some (idx, tries) ->
      attempts.(idx) <- tries;
      w.current <- Some idx;
      w.started <- Unix.gettimeofday ();
      (try
         output_string w.job_w (string_of_int idx ^ "\n");
         flush w.job_w
       with Sys_error _ ->
         (* worker already gone: recycle the job and the worker *)
         w.current <- None;
         Queue.add (idx, tries) pending;
         dismiss w ~kill:true;
         let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
         workers := spawn ~siblings:(sibling_fds rest) worker :: rest)
  in
  let fail_or_retry idx msg =
    if attempts.(idx) < retries then Queue.add (idx, attempts.(idx) + 1) pending
    else begin
      incr done_count;
      on_result idx (Error msg)
    end
  in
  (* replace a dead/hung worker, recycling its in-flight job *)
  let replace w ~kill ~msg =
    (match w.current with
     | Some idx -> fail_or_retry idx msg
     | None -> ());
    dismiss w ~kill;
    let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
    let w' = spawn ~siblings:(sibling_fds rest) worker in
    workers := w' :: rest;
    w'
  in
  while !done_count < jobs do
    List.iter (fun w -> if w.current = None then assign w) !workers;
    let busy = List.filter (fun w -> w.current <> None) !workers in
    if busy = [] then
      (* nothing in flight and jobs remain: all workers idle with an
         empty queue can't happen while done_count < jobs, but guard
         against a protocol bug turning this into a spin *)
      ignore (Unix.select [] [] [] 0.01)
    else begin
      let fds = List.map (fun w -> w.res_fd) busy in
      let readable, _, _ = Unix.select fds [] [] 0.2 in
      List.iter
        (fun w ->
           if List.mem w.res_fd readable then
             match input_line w.res_ic with
             | exception End_of_file ->
               ignore (replace w ~kill:true ~msg:"worker died")
             | line ->
               w.current <- None;
               (match String.split_on_char ' ' line with
                | "ok" :: idx :: rest ->
                  incr done_count;
                  on_result (int_of_string idx)
                    (Ok (String.concat " " rest))
                | "err" :: idx :: rest ->
                  let msg = String.concat " " rest in
                  fail_or_retry (int_of_string idx)
                    (try Scanf.unescaped msg with _ -> msg)
                | _ ->
                  ignore
                    (replace w ~kill:true
                       ~msg:("pool protocol violation: " ^ line))))
        busy;
      (* enforce per-attempt timeouts *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
           match w.current with
           | Some _ when now -. w.started > timeout ->
             ignore
               (replace w ~kill:true
                  ~msg:(Printf.sprintf "timeout after %.0fs" timeout))
           | _ -> ())
        !workers
    end
  done;
  (* two-phase shutdown: drop every job pipe first so EOF reaches all
     children, then reap *)
  List.iter
    (fun w -> try close_out w.job_w with Sys_error _ -> ())
    !workers;
  List.iter (fun w -> dismiss w ~kill:false) !workers;
  match old_sigpipe with
  | Some b -> ignore (Sys.signal Sys.sigpipe b)
  | None -> ()
