(* Fork-based self-scheduling worker pool (see pool.mli).

   Parent/worker protocol, one line each way per job:

     parent -> worker:  "<job index>\n"
     worker -> parent:  "ok <idx> <payload>\n"  |  "err <idx> <msg>\n"

   The payload is produced in the child, so it must be newline-free
   (the sweep ships compact JSON); [String.escaped] guards the error
   path.  Workers are stateless between jobs — all job data lives in
   the [worker] closure, which the child inherits through fork — so a
   killed worker is replaced by simply forking again. *)

exception Interrupted of int

type event =
  | Retry of { job : int; attempt : int; backoff : float; reason : string }

type worker_slot = {
  pid : int;
  job_fd : Unix.file_descr;       (* raw write end, for sibling cleanup *)
  job_w : out_channel;            (* parent writes job indices *)
  res_fd : Unix.file_descr;       (* select()able result pipe *)
  res_ic : in_channel;
  mutable current : int option;   (* in-flight job index *)
  mutable started : float;
}

let oneline s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

(* Deterministic jitter in [0.75, 1.25], derived from the job identity,
   so two attempts of the same job always wait the same amount (the
   recovery-determinism tests rely on reproducible pool behavior) while
   different jobs still decorrelate. *)
let backoff_delay ~base ~cap idx attempt =
  let raw = min cap (base *. (2. ** float_of_int (attempt - 1))) in
  let h = Hashtbl.hash (idx, attempt) land 0xffff in
  raw *. (0.75 +. (0.5 *. float_of_int h /. 65535.))

(* [siblings] are the parent's pipe ends for the other live workers:
   fork duplicates them into the child, and a child holding a copy of a
   sibling's job-pipe write end would keep that sibling alive past the
   parent's close (no EOF ever arrives), so the child drops them all
   before entering its job loop. *)
let spawn ~(siblings : Unix.file_descr list) (worker : int -> string) :
  worker_slot =
  let jr, jw = Unix.pipe ~cloexec:false () in
  let rr, rw = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close jw;
    Unix.close rr;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      siblings;
    (* the parent's interrupt choreography (kill, reap, cleanup) must
       run exactly once, in the parent: children take the default
       disposition and simply die when the parent guns them down *)
    (try Sys.set_signal Sys.sigint Sys.Signal_default
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm Sys.Signal_default
     with Invalid_argument _ -> ());
    let ic = Unix.in_channel_of_descr jr in
    let oc = Unix.out_channel_of_descr rw in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        let idx = int_of_string (String.trim line) in
        let reply =
          match worker idx with
          | payload -> Printf.sprintf "ok %d %s" idx (oneline payload)
          | exception e ->
            Printf.sprintf "err %d %s" idx
              (String.escaped (Printexc.to_string e))
        in
        output_string oc (reply ^ "\n");
        flush oc;
        loop ()
    in
    (try loop () with _ -> ());
    (* _exit: skip at_exit/buffer flushing inherited from the parent *)
    Unix._exit 0
  | pid ->
    Unix.close jr;
    Unix.close rw;
    { pid;
      job_fd = jw;
      job_w = Unix.out_channel_of_descr jw;
      res_fd = rr;
      res_ic = Unix.in_channel_of_descr rr;
      current = None;
      started = 0. }

let dismiss (w : worker_slot) ~kill =
  if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try close_out w.job_w with Sys_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  try close_in w.res_ic with Sys_error _ -> ()

let sibling_fds workers =
  List.concat_map (fun w -> [ w.job_fd; w.res_fd ]) workers

(* a signal can land during select(); treat the EINTR as an empty wait
   and let the loop head observe the interrupt flag *)
let select_read fds t =
  match Unix.select fds [] [] t with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let run ~jobs ~(worker : int -> string) ~procs ?(timeout = 600.) ?(retries = 1)
    ?(backoff_base = 0.25) ?(backoff_cap = 30.) ?(on_event = fun _ -> ())
    ?(on_interrupt = fun () -> ())
    ~(on_result : int -> (string, string) result -> unit) () : unit =
  let procs = max 1 (min procs (max 1 jobs)) in
  (* a worker killed between select() and the parent's write must not
     SIGPIPE the parent; the write path handles the EPIPE instead *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  (* SIGINT/SIGTERM only raise a flag here; the loop head does the
     actual shutdown at a point where the worker list is consistent *)
  let interrupted = ref None in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun _ -> interrupted := Some s)))
    with Invalid_argument _ -> None
  in
  let old_sigint = install Sys.sigint in
  let old_sigterm = install Sys.sigterm in
  let restore_signals () =
    let put s = function
      | Some b -> (try ignore (Sys.signal s b) with Invalid_argument _ -> ())
      | None -> ()
    in
    put Sys.sigint old_sigint;
    put Sys.sigterm old_sigterm;
    put Sys.sigpipe old_sigpipe
  in
  let pending = Queue.create () in
  for i = 0 to jobs - 1 do
    Queue.add (i, 0) pending
  done;
  (* retries waiting out their backoff: (eligible_at, idx, attempt) *)
  let delayed = ref [] in
  let attempts = Array.make (max 1 jobs) 0 in
  let done_count = ref 0 in
  let workers = ref [] in
  let abort signal =
    List.iter (fun w -> dismiss w ~kill:true) !workers;
    workers := [];
    on_interrupt ();
    restore_signals ();
    raise (Interrupted signal)
  in
  (* Every exit path — normal completion, Interrupted, or an exception
     escaping a callback ([on_result]/[on_event] raising, a malformed
     result line) — must dismiss the workers and restore the handlers:
     a long-lived caller otherwise leaks child processes and keeps its
     SIGINT/SIGTERM/SIGPIPE handlers hijacked.  The happy paths empty
     [workers] themselves, so the [finally] is their no-op; on the
     escape paths it SIGKILLs whatever is left. *)
  Fun.protect
    ~finally:(fun () ->
        List.iter (fun w -> dismiss w ~kill:true) !workers;
        workers := [];
        restore_signals ())
  @@ fun () ->
  for _ = 1 to procs do
    workers := spawn ~siblings:(sibling_fds !workers) worker :: !workers
  done;
  let assign w =
    match Queue.take_opt pending with
    | None -> ()
    | Some (idx, tries) ->
      attempts.(idx) <- tries;
      w.current <- Some idx;
      w.started <- Unix.gettimeofday ();
      (try
         output_string w.job_w (string_of_int idx ^ "\n");
         flush w.job_w
       with Sys_error _ ->
         (* worker already gone: recycle the job and the worker *)
         w.current <- None;
         Queue.add (idx, tries) pending;
         dismiss w ~kill:true;
         let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
         workers := spawn ~siblings:(sibling_fds rest) worker :: rest)
  in
  let fail_or_retry idx msg =
    if attempts.(idx) < retries then begin
      let attempt = attempts.(idx) + 1 in
      let backoff = backoff_delay ~base:backoff_base ~cap:backoff_cap idx attempt in
      on_event (Retry { job = idx; attempt; backoff; reason = msg });
      delayed :=
        (Unix.gettimeofday () +. backoff, idx, attempt) :: !delayed
    end
    else begin
      incr done_count;
      on_result idx (Error msg)
    end
  in
  (* replace a dead/hung worker, recycling its in-flight job *)
  let replace w ~kill ~msg =
    (match w.current with
     | Some idx -> fail_or_retry idx msg
     | None -> ());
    dismiss w ~kill;
    let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
    let w' = spawn ~siblings:(sibling_fds rest) worker in
    workers := w' :: rest;
    w'
  in
  while !done_count < jobs do
    (match !interrupted with Some s -> abort s | None -> ());
    (* promote retries whose backoff has elapsed *)
    if !delayed <> [] then begin
      let now = Unix.gettimeofday () in
      let due, later = List.partition (fun (at, _, _) -> at <= now) !delayed in
      delayed := later;
      List.iter
        (fun (_, idx, attempt) -> Queue.add (idx, attempt) pending)
        (List.sort compare due)
    end;
    List.iter (fun w -> if w.current = None then assign w) !workers;
    let busy = List.filter (fun w -> w.current <> None) !workers in
    if busy = [] then
      (* everything idle: either retries are waiting out their backoff,
         or (guarding against a protocol bug) nothing is due at all *)
      ignore (select_read [] 0.01)
    else begin
      let fds = List.map (fun w -> w.res_fd) busy in
      let readable = select_read fds 0.2 in
      List.iter
        (fun w ->
           if List.mem w.res_fd readable then
             match input_line w.res_ic with
             | exception End_of_file ->
               ignore (replace w ~kill:true ~msg:"worker died")
             | line ->
               (* [w.current] stays set until the line parses: a
                  malformed reply (bad tag, non-numeric index) recycles
                  both the worker and its in-flight job instead of
                  losing the job or raising out of the loop *)
               (match String.split_on_char ' ' line with
                | "ok" :: idx :: rest
                  when int_of_string_opt idx <> None ->
                  w.current <- None;
                  incr done_count;
                  on_result (int_of_string idx)
                    (Ok (String.concat " " rest))
                | "err" :: idx :: rest
                  when int_of_string_opt idx <> None ->
                  w.current <- None;
                  let msg = String.concat " " rest in
                  fail_or_retry (int_of_string idx)
                    (try Scanf.unescaped msg with _ -> msg)
                | _ ->
                  ignore
                    (replace w ~kill:true
                       ~msg:("pool protocol violation: " ^ line))))
        busy;
      (* enforce per-attempt timeouts *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
           match w.current with
           | Some _ when now -. w.started > timeout ->
             ignore
               (replace w ~kill:true
                  ~msg:(Printf.sprintf "timeout after %.0fs" timeout))
           | _ -> ())
        !workers
    end
  done;
  (match !interrupted with Some s -> abort s | None -> ());
  (* two-phase shutdown: drop every job pipe first so EOF reaches all
     children, then reap *)
  List.iter
    (fun w -> try close_out w.job_w with Sys_error _ -> ())
    !workers;
  List.iter (fun w -> dismiss w ~kill:false) !workers;
  workers := [];
  restore_signals ()

(* ---------- persistent sessions (straightd) ---------- *)

(* Same fork/pipe machinery as the batch [run], but jobs arrive over
   time and carry their own payload (the batch protocol only ships an
   index because the job list is fixed at fork time):

     parent -> worker:  "<id> <payload>\n"
     worker -> parent:  "ok <id> <payload>\n"  |  "err <id> <msg>\n"

   No signal handling and no retries here: the resident daemon owns its
   signals and decides retry policy per request. *)
module Persistent = struct
  type job = { id : int; payload : string }

  type pworker = {
    p_pid : int;
    p_job_fd : Unix.file_descr;
    p_job_w : out_channel;
    p_res_fd : Unix.file_descr;
    p_res_ic : in_channel;
    mutable p_current : job option;
    mutable p_started : float;
  }

  type t = {
    n_procs : int;
    work : string -> string;
    at_fork : unit -> unit;
    mutable pool : pworker list;
    queue : job Queue.t;
    mutable alive : bool;
  }

  let p_sibling_fds pool =
    List.concat_map (fun w -> [ w.p_job_fd; w.p_res_fd ]) pool

  let p_spawn t ~siblings : pworker =
    let jr, jw = Unix.pipe ~cloexec:false () in
    let rr, rw = Unix.pipe ~cloexec:false () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Unix.close jw;
      Unix.close rr;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        siblings;
      (* the daemon's graceful-shutdown choreography runs in the parent
         only; workers die on the default disposition *)
      (try Sys.set_signal Sys.sigint Sys.Signal_default
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigterm Sys.Signal_default
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigpipe Sys.Signal_default
       with Invalid_argument _ -> ());
      (* the caller's chance to drop inherited fds (listen socket,
         client connections) so a worker never pins them open *)
      (try t.at_fork () with _ -> ());
      let ic = Unix.in_channel_of_descr jr in
      let oc = Unix.out_channel_of_descr rw in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
          let reply =
            match String.index_opt line ' ' with
            | None -> Printf.sprintf "err 0 %s" (String.escaped "bad job line")
            | Some sp ->
              let id = String.sub line 0 sp in
              let payload =
                String.sub line (sp + 1) (String.length line - sp - 1)
              in
              (match t.work payload with
               | result -> Printf.sprintf "ok %s %s" id (oneline result)
               | exception e ->
                 Printf.sprintf "err %s %s" id
                   (String.escaped (Printexc.to_string e)))
          in
          output_string oc (reply ^ "\n");
          flush oc;
          loop ()
      in
      (try loop () with _ -> ());
      Unix._exit 0
    | pid ->
      Unix.close jr;
      Unix.close rw;
      { p_pid = pid;
        p_job_fd = jw;
        p_job_w = Unix.out_channel_of_descr jw;
        p_res_fd = rr;
        p_res_ic = Unix.in_channel_of_descr rr;
        p_current = None;
        p_started = 0. }

  let p_dismiss (w : pworker) ~kill =
    if kill then
      (try Unix.kill w.p_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try close_out w.p_job_w with Sys_error _ -> ());
    (try ignore (Unix.waitpid [] w.p_pid) with Unix.Unix_error _ -> ());
    try close_in w.p_res_ic with Sys_error _ -> ()

  let create ~procs ?(at_fork = fun () -> ()) ~(worker : string -> string) ()
    : t =
    let t =
      { n_procs = max 1 procs;
        work = worker;
        at_fork;
        pool = [];
        queue = Queue.create ();
        alive = true }
    in
    for _ = 1 to t.n_procs do
      t.pool <- p_spawn t ~siblings:(p_sibling_fds t.pool) :: t.pool
    done;
    t

  let procs t = t.n_procs
  let running t = List.length (List.filter (fun w -> w.p_current <> None) t.pool)
  let queued t = Queue.length t.queue

  let result_fds t =
    List.filter_map
      (fun w -> if w.p_current <> None then Some w.p_res_fd else None)
      t.pool

  let p_replace t w : pworker =
    p_dismiss w ~kill:true;
    let rest = List.filter (fun x -> x.p_pid <> w.p_pid) t.pool in
    let w' = p_spawn t ~siblings:(p_sibling_fds rest) in
    t.pool <- w' :: rest;
    w'

  (* hand [j] to [w]; a dead worker is replaced and the job re-queued *)
  let p_send t w (j : job) =
    w.p_current <- Some j;
    w.p_started <- Unix.gettimeofday ();
    try
      output_string w.p_job_w
        (Printf.sprintf "%d %s\n" j.id (oneline j.payload));
      flush w.p_job_w
    with Sys_error _ ->
      w.p_current <- None;
      Queue.add j t.queue;
      ignore (p_replace t w)

  let dispatch t =
    List.iter
      (fun w ->
         if w.p_current = None && not (Queue.is_empty t.queue) then
           p_send t w (Queue.take t.queue))
      t.pool

  let submit t ~id payload =
    if not t.alive then invalid_arg "Pool.Persistent.submit: pool is shut down";
    Queue.add { id; payload } t.queue;
    dispatch t

  let poll ?(timeout_job = 0.) t : (int * (string, string) result) list =
    let out = ref [] in
    let busy = List.filter (fun w -> w.p_current <> None) t.pool in
    if busy <> [] then begin
      let readable = select_read (List.map (fun w -> w.p_res_fd) busy) 0. in
      List.iter
        (fun w ->
           if List.mem w.p_res_fd readable then
             match input_line w.p_res_ic with
             | exception End_of_file ->
               let j = w.p_current in
               ignore (p_replace t w);
               (match j with
                | Some j -> out := (j.id, Error "worker died") :: !out
                | None -> ())
             | line ->
               (match String.split_on_char ' ' line with
                | "ok" :: id :: rest when int_of_string_opt id <> None ->
                  w.p_current <- None;
                  out :=
                    (int_of_string id, Ok (String.concat " " rest)) :: !out
                | "err" :: id :: rest when int_of_string_opt id <> None ->
                  w.p_current <- None;
                  let msg = String.concat " " rest in
                  out :=
                    (int_of_string id,
                     Error (try Scanf.unescaped msg with _ -> msg))
                    :: !out
                | _ ->
                  let j = w.p_current in
                  ignore (p_replace t w);
                  (match j with
                   | Some j ->
                     out :=
                       (j.id, Error ("pool protocol violation: " ^ line))
                       :: !out
                   | None -> ())))
        busy;
      if timeout_job > 0. then begin
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
             match w.p_current with
             | Some j when now -. w.p_started > timeout_job ->
               ignore (p_replace t w);
               out :=
                 (j.id,
                  Error (Printf.sprintf "timeout after %.0fs" timeout_job))
                 :: !out
             | _ -> ())
          t.pool
      end
    end;
    dispatch t;
    List.rev !out

  let shutdown t =
    if t.alive then begin
      t.alive <- false;
      (* idle workers get EOF and exit on their own; busy ones are
         mid-simulation and get the axe *)
      List.iter
        (fun w -> p_dismiss w ~kill:(w.p_current <> None))
        t.pool;
      t.pool <- [];
      Queue.clear t.queue
    end
end
