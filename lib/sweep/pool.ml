(* Fork-based self-scheduling worker pool (see pool.mli).

   Parent/worker protocol, one line each way per job:

     parent -> worker:  "<job index>\n"
     worker -> parent:  "ok <idx> <payload>\n"  |  "err <idx> <msg>\n"

   The payload is produced in the child, so it must be newline-free
   (the sweep ships compact JSON); [String.escaped] guards the error
   path.  Workers are stateless between jobs — all job data lives in
   the [worker] closure, which the child inherits through fork — so a
   killed worker is replaced by simply forking again. *)

exception Interrupted of int

type event =
  | Retry of { job : int; attempt : int; backoff : float; reason : string }

type worker_slot = {
  pid : int;
  job_fd : Unix.file_descr;       (* raw write end, for sibling cleanup *)
  job_w : out_channel;            (* parent writes job indices *)
  res_fd : Unix.file_descr;       (* select()able result pipe *)
  res_ic : in_channel;
  mutable current : int option;   (* in-flight job index *)
  mutable started : float;
}

let oneline s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

(* Deterministic jitter in [0.75, 1.25], derived from the job identity,
   so two attempts of the same job always wait the same amount (the
   recovery-determinism tests rely on reproducible pool behavior) while
   different jobs still decorrelate. *)
let backoff_delay ~base ~cap idx attempt =
  let raw = min cap (base *. (2. ** float_of_int (attempt - 1))) in
  let h = Hashtbl.hash (idx, attempt) land 0xffff in
  raw *. (0.75 +. (0.5 *. float_of_int h /. 65535.))

(* [siblings] are the parent's pipe ends for the other live workers:
   fork duplicates them into the child, and a child holding a copy of a
   sibling's job-pipe write end would keep that sibling alive past the
   parent's close (no EOF ever arrives), so the child drops them all
   before entering its job loop. *)
let spawn ~(siblings : Unix.file_descr list) (worker : int -> string) :
  worker_slot =
  let jr, jw = Unix.pipe ~cloexec:false () in
  let rr, rw = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close jw;
    Unix.close rr;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      siblings;
    (* the parent's interrupt choreography (kill, reap, cleanup) must
       run exactly once, in the parent: children take the default
       disposition and simply die when the parent guns them down *)
    (try Sys.set_signal Sys.sigint Sys.Signal_default
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm Sys.Signal_default
     with Invalid_argument _ -> ());
    let ic = Unix.in_channel_of_descr jr in
    let oc = Unix.out_channel_of_descr rw in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        let idx = int_of_string (String.trim line) in
        let reply =
          match worker idx with
          | payload -> Printf.sprintf "ok %d %s" idx (oneline payload)
          | exception e ->
            Printf.sprintf "err %d %s" idx
              (String.escaped (Printexc.to_string e))
        in
        output_string oc (reply ^ "\n");
        flush oc;
        loop ()
    in
    (try loop () with _ -> ());
    (* _exit: skip at_exit/buffer flushing inherited from the parent *)
    Unix._exit 0
  | pid ->
    Unix.close jr;
    Unix.close rw;
    { pid;
      job_fd = jw;
      job_w = Unix.out_channel_of_descr jw;
      res_fd = rr;
      res_ic = Unix.in_channel_of_descr rr;
      current = None;
      started = 0. }

let dismiss (w : worker_slot) ~kill =
  if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try close_out w.job_w with Sys_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  try close_in w.res_ic with Sys_error _ -> ()

let sibling_fds workers =
  List.concat_map (fun w -> [ w.job_fd; w.res_fd ]) workers

(* a signal can land during select(); treat the EINTR as an empty wait
   and let the loop head observe the interrupt flag *)
let select_read fds t =
  match Unix.select fds [] [] t with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let run ~jobs ~(worker : int -> string) ~procs ?(timeout = 600.) ?(retries = 1)
    ?(backoff_base = 0.25) ?(backoff_cap = 30.) ?(on_event = fun _ -> ())
    ?(on_interrupt = fun () -> ())
    ~(on_result : int -> (string, string) result -> unit) () : unit =
  let procs = max 1 (min procs (max 1 jobs)) in
  (* a worker killed between select() and the parent's write must not
     SIGPIPE the parent; the write path handles the EPIPE instead *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  (* SIGINT/SIGTERM only raise a flag here; the loop head does the
     actual shutdown at a point where the worker list is consistent *)
  let interrupted = ref None in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun _ -> interrupted := Some s)))
    with Invalid_argument _ -> None
  in
  let old_sigint = install Sys.sigint in
  let old_sigterm = install Sys.sigterm in
  let restore_signals () =
    let put s = function
      | Some b -> (try ignore (Sys.signal s b) with Invalid_argument _ -> ())
      | None -> ()
    in
    put Sys.sigint old_sigint;
    put Sys.sigterm old_sigterm;
    put Sys.sigpipe old_sigpipe
  in
  let pending = Queue.create () in
  for i = 0 to jobs - 1 do
    Queue.add (i, 0) pending
  done;
  (* retries waiting out their backoff: (eligible_at, idx, attempt) *)
  let delayed = ref [] in
  let attempts = Array.make (max 1 jobs) 0 in
  let done_count = ref 0 in
  let workers = ref [] in
  let abort signal =
    List.iter (fun w -> dismiss w ~kill:true) !workers;
    workers := [];
    on_interrupt ();
    restore_signals ();
    raise (Interrupted signal)
  in
  for _ = 1 to procs do
    workers := spawn ~siblings:(sibling_fds !workers) worker :: !workers
  done;
  let assign w =
    match Queue.take_opt pending with
    | None -> ()
    | Some (idx, tries) ->
      attempts.(idx) <- tries;
      w.current <- Some idx;
      w.started <- Unix.gettimeofday ();
      (try
         output_string w.job_w (string_of_int idx ^ "\n");
         flush w.job_w
       with Sys_error _ ->
         (* worker already gone: recycle the job and the worker *)
         w.current <- None;
         Queue.add (idx, tries) pending;
         dismiss w ~kill:true;
         let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
         workers := spawn ~siblings:(sibling_fds rest) worker :: rest)
  in
  let fail_or_retry idx msg =
    if attempts.(idx) < retries then begin
      let attempt = attempts.(idx) + 1 in
      let backoff = backoff_delay ~base:backoff_base ~cap:backoff_cap idx attempt in
      on_event (Retry { job = idx; attempt; backoff; reason = msg });
      delayed :=
        (Unix.gettimeofday () +. backoff, idx, attempt) :: !delayed
    end
    else begin
      incr done_count;
      on_result idx (Error msg)
    end
  in
  (* replace a dead/hung worker, recycling its in-flight job *)
  let replace w ~kill ~msg =
    (match w.current with
     | Some idx -> fail_or_retry idx msg
     | None -> ());
    dismiss w ~kill;
    let rest = List.filter (fun x -> x.pid <> w.pid) !workers in
    let w' = spawn ~siblings:(sibling_fds rest) worker in
    workers := w' :: rest;
    w'
  in
  while !done_count < jobs do
    (match !interrupted with Some s -> abort s | None -> ());
    (* promote retries whose backoff has elapsed *)
    if !delayed <> [] then begin
      let now = Unix.gettimeofday () in
      let due, later = List.partition (fun (at, _, _) -> at <= now) !delayed in
      delayed := later;
      List.iter
        (fun (_, idx, attempt) -> Queue.add (idx, attempt) pending)
        (List.sort compare due)
    end;
    List.iter (fun w -> if w.current = None then assign w) !workers;
    let busy = List.filter (fun w -> w.current <> None) !workers in
    if busy = [] then
      (* everything idle: either retries are waiting out their backoff,
         or (guarding against a protocol bug) nothing is due at all *)
      ignore (select_read [] 0.01)
    else begin
      let fds = List.map (fun w -> w.res_fd) busy in
      let readable = select_read fds 0.2 in
      List.iter
        (fun w ->
           if List.mem w.res_fd readable then
             match input_line w.res_ic with
             | exception End_of_file ->
               ignore (replace w ~kill:true ~msg:"worker died")
             | line ->
               w.current <- None;
               (match String.split_on_char ' ' line with
                | "ok" :: idx :: rest ->
                  incr done_count;
                  on_result (int_of_string idx)
                    (Ok (String.concat " " rest))
                | "err" :: idx :: rest ->
                  let msg = String.concat " " rest in
                  fail_or_retry (int_of_string idx)
                    (try Scanf.unescaped msg with _ -> msg)
                | _ ->
                  ignore
                    (replace w ~kill:true
                       ~msg:("pool protocol violation: " ^ line))))
        busy;
      (* enforce per-attempt timeouts *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
           match w.current with
           | Some _ when now -. w.started > timeout ->
             ignore
               (replace w ~kill:true
                  ~msg:(Printf.sprintf "timeout after %.0fs" timeout))
           | _ -> ())
        !workers
    end
  done;
  (match !interrupted with Some s -> abort s | None -> ());
  (* two-phase shutdown: drop every job pipe first so EOF reaches all
     children, then reap *)
  List.iter
    (fun w -> try close_out w.job_w with Sys_error _ -> ())
    !workers;
  List.iter (fun w -> dismiss w ~kill:false) !workers;
  restore_signals ()
