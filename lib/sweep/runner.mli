(** Executes one grid point in-process and shapes the result record the
    sweep pipeline exchanges: worker -> driver (one compact JSON line),
    driver -> disk cache, cache -> aggregation, and the golden
    regression test ([test/sweep_golden.json]). *)

type record = {
  model : string;                 (** [Params.t.name] *)
  target : string;                (** [Experiment.target_label] *)
  workload : string;
  iterations : int;
  machine : string;               (** {!Grid.machine_label} *)
  width : int;                    (** issue width axis value *)
  rob : int;
  sched : int;
  predictor : string;
  ideal : bool;
  params_hash : string;           (** [Params.digest] *)
  cycles : int;
  committed : int;
  ipc : float;
  branch_mispredicts : int;
  cpi : Ooo_common.Stats.cpi_stack;
  host_seconds : float;           (** wall time of the engine+ISS run *)
  cached : bool;                  (** served from the on-disk cache *)
  sample : Sample.Spec.t option;  (** [Some] when the point was sampled *)
  sample_ci95 : float;            (** CPI 95% half-width (sampled only) *)
  sample_intervals : int;         (** intervals recombined (sampled only) *)
}

val run :
  ?checkpoint:string -> ?checkpoint_every:int -> ?sample_store:string ->
  Grid.point -> record
(** Compile, run the functional ISS, and simulate the point on the
    cycle engine (lockstep checker on, as in the bench harness).

    [checkpoint] arms crash recovery: the engine state is saved to that
    path every [checkpoint_every] cycles (default 20k), and when the
    file already exists the run resumes from it instead of starting at
    cycle 0 — so a retry after a kill repeats only the remaining
    cycles.  An unusable checkpoint file is deleted and the point
    restarts clean.  The caller owns deleting the file on success.

    A point with [sample = Some spec] instead runs through the interval
    sampler: checkpoints are materialized (or served) under
    [sample_store] (default ["_sweep"], the same root as the result
    cache), every interval is simulated sequentially in-process, and
    the recombined estimate fills the record — [cycles] is the
    extrapolated whole-run estimate, [sample_ci95] its error bar, and
    [branch_mispredicts] is 0 (not collected per interval).
    [checkpoint] is ignored for sampled points (each interval is
    already a restartable unit of work). *)

val to_json : record -> Ooo_common.Stats.Json.t

val of_json : Ooo_common.Stats.Json.t -> record
(** @raise Ooo_common.Params.Json_error on malformed input. *)

val compare_order : record -> record -> int
(** Deterministic sort for aggregated output: (workload, machine,
    width, predictor, ideal, rob, sched). *)
