(* Declarative experiment grids over Params.t (see grid.mli). *)

module Params = Ooo_common.Params
module Exp = Straight_core.Experiment

type machine = Ss | Ss_ckpt of int | Straight_raw | Straight_re

let machine_label = function
  | Ss -> "ss"
  | Ss_ckpt n -> Printf.sprintf "ss-ckpt%d" n
  | Straight_raw -> "straight-raw"
  | Straight_re -> "straight-re"

let machine_of_label s =
  match s with
  | "ss" -> Some Ss
  | "straight-raw" -> Some Straight_raw
  | "straight-re" | "straight" -> Some Straight_re
  | _ ->
    if String.length s > 7 && String.sub s 0 7 = "ss-ckpt" then
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some n when n > 0 -> Some (Ss_ckpt n)
      | _ -> None
    else None

type spec = {
  machines : machine list;
  widths : int list;
  robs : int option list;
  scheds : int option list;
  predictors : Params.predictor_kind list;
  ideal : bool list;
  workloads : string list;
  samples : Sample.Spec.t option list;
  quick : bool;
}

type point = {
  params : Params.t;
  target : Exp.target;
  workload : Workloads.t;
  machine : machine;
  width : int;
  sample : Sample.Spec.t option;
}

(* ---------- workload axis ---------- *)

let workload_names =
  [ "dhrystone"; "coremark"; "fib"; "iota"; "sort"; "quicksort";
    "pointer_chase"; "wasm_sieve"; "wasm_crc32"; "wasm_expr" ]

let workload ~quick = function
  | "dhrystone" -> Workloads.dhrystone ~iterations:(if quick then 30 else 200) ()
  | "coremark" -> Workloads.coremark ~iterations:(if quick then 2 else 5) ()
  | "fib" -> Workloads.fib ()
  | "iota" -> Workloads.iota ()
  | "sort" -> Workloads.sort ()
  | "quicksort" -> Workloads.quicksort ()
  | "pointer_chase" ->
    if quick then Workloads.pointer_chase ~nodes:256 ~hops:200 ()
    else Workloads.pointer_chase ()
  | "wasm_sieve" ->
    Workloads.wasm_sieve ~limit:(if quick then 400 else 2000) ()
  | "wasm_crc32" ->
    Workloads.wasm_crc32 ~nbytes:(if quick then 64 else 256) ()
  | "wasm_expr" -> Workloads.wasm_expr ~iters:(if quick then 100 else 600) ()
  | name ->
    invalid_arg
      (Printf.sprintf "unknown workload %S (known: %s)" name
         (String.concat ", " workload_names))

(* ---------- machine-width axis ---------- *)

(* Widths 2 and 4 are the paper's Table-I pairs.  Any other width scales
   the window resources linearly from the per-way density of the 4-way
   models: the paper's scalability argument (Section II-B) is about
   exactly this growth, so the derived models let the sweep probe beyond
   the two evaluated design points. *)
let model_of_width ~straight w =
  match (w, straight) with
  | 2, false -> Params.ss_2way
  | 2, true -> Params.straight_2way
  | 4, false -> Params.ss_4way
  | 4, true -> Params.straight_4way
  | w, _ when w >= 1 ->
    let base = if straight then Params.straight_4way else Params.ss_4way in
    let rob = 56 * w in
    let rename =
      match base.Params.rename with
      | Params.Rmt _ -> Params.Rmt { phys_regs = 32 + rob }
      | r -> r
    in
    { base with
      Params.name =
        Printf.sprintf "%s-%dway" (if straight then "STRAIGHT" else "SS") w;
      fetch_width = w + 2;
      issue_width = w;
      commit_width = max 3 w;
      rob_entries = rob;
      scheduler_entries = 24 * w;
      ldq_entries = 18 * w;
      stq_entries = 14 * w;
      n_alu = w;
      n_mul = max 1 (w / 2);
      n_div = 1;
      n_bc = w;
      n_mem = w;
      rename }
  | w, _ -> invalid_arg (Printf.sprintf "invalid machine width %d" w)

(* ---------- expansion ---------- *)

let apply_rob rob (p : Params.t) =
  match rob with
  | None -> p
  | Some n ->
    let rename =
      match p.Params.rename with
      | Params.Rmt _ -> Params.Rmt { phys_regs = 32 + n }
      | Params.Rmt_checkpoint { checkpoints; _ } ->
        Params.Rmt_checkpoint { phys_regs = 32 + n; checkpoints }
      | Params.Rp -> Params.Rp
    in
    { p with Params.rob_entries = n; rename;
      name = Printf.sprintf "%s-rob%d" p.Params.name n }

let apply_sched sched (p : Params.t) =
  match sched with
  | None -> p
  | Some n ->
    { p with Params.scheduler_entries = n;
      name = Printf.sprintf "%s-sched%d" p.Params.name n }

let point_of ~quick machine width rob sched predictor ideal sample wname =
  let straight =
    match machine with Ss | Ss_ckpt _ -> false | Straight_raw | Straight_re -> true
  in
  let p = model_of_width ~straight width in
  let p =
    match machine with Ss_ckpt n -> Params.with_checkpoints ~n p | _ -> p
  in
  let p = apply_rob rob p in
  let p = apply_sched sched p in
  let p = match predictor with Params.Tage -> Params.with_tage p | Params.Gshare -> p in
  let p = if ideal then Params.with_ideal_recovery p else p in
  let target =
    match machine with
    | Ss | Ss_ckpt _ -> Exp.Riscv
    | Straight_raw -> Exp.Straight_raw
    | Straight_re -> Exp.Straight_re
  in
  { params = p; target; workload = workload ~quick wname; machine; width;
    sample }

let expand (s : spec) : point list =
  List.concat_map
    (fun machine ->
       List.concat_map
         (fun width ->
            List.concat_map
              (fun rob ->
                 List.concat_map
                   (fun sched ->
                      List.concat_map
                        (fun predictor ->
                           List.concat_map
                             (fun ideal ->
                                List.concat_map
                                  (fun sample ->
                                     List.map
                                       (point_of ~quick:s.quick machine width
                                          rob sched predictor ideal sample)
                                       s.workloads)
                                  s.samples)
                             s.ideal)
                        s.predictors)
                   s.scheds)
              s.robs)
         s.widths)
    s.machines

(* ---------- presets ---------- *)

let default ~quick =
  { machines = [ Ss; Straight_re ];
    widths = [ 2; 4 ];
    robs = [ None ];
    scheds = [ None ];
    predictors = [ Params.Gshare; Params.Tage ];
    ideal = [ false; true ];
    workloads = [ "dhrystone"; "coremark" ];
    samples = [ None ];
    quick }

let smoke =
  { machines = [ Ss ];
    widths = [ 2 ];
    robs = [ None ];
    scheds = [ None ];
    predictors = [ Params.Gshare ];
    ideal = [ false ];
    workloads = [ "fib"; "quicksort" ];
    samples = [ None ];
    quick = true }

(* The pinned regression grid: quick sizes so `dune runtest` stays
   cheap, axes (width, machine) the fixed golden set in test_stats.ml
   never varies per workload. *)
let golden =
  { machines = [ Ss; Straight_re ];
    widths = [ 2; 4 ];
    robs = [ None ];
    scheds = [ None ];
    predictors = [ Params.Gshare ];
    ideal = [ false ];
    workloads = [ "fib"; "quicksort"; "pointer_chase" ];
    samples = [ None ];
    quick = true }
