(** Derives the per-figure markdown tables (FIGURES.md) from a set of
    sweep records: Fig. 12 (machine-width sweep), Fig. 13
    (ideal-recovery ablation), Fig. 14 (predictor sweep), plus a CPI
    stack breakdown per point.  Tables are robust to sparse grids —
    a missing cell renders as "—" rather than failing, so any grid the
    user sweeps produces a readable report. *)

val render : Runner.record list -> string
(** The full FIGURES.md body (markdown). *)
