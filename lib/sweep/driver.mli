(** Sweep orchestration: expand a grid, serve what the cache already
    knows, fan the rest out over the {!Pool}, persist each fresh result,
    and aggregate.

    [procs = 0] runs every point in-process (no fork) — the mode the
    test suite uses; [procs >= 1] forks that many workers. *)

type summary = {
  total : int;
  executed : int;       (** points simulated this invocation *)
  cached : int;         (** points served from the on-disk cache *)
  failed : int;         (** points whose retries were exhausted *)
  wall_seconds : float;
}

val sweep :
  ?procs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?cache_dir:string ->
  ?checkpoint_every:int ->
  ?on_record:(Runner.record -> unit) ->
  ?on_retry:(Grid.point -> attempt:int -> backoff:float -> string -> unit) ->
  Grid.spec ->
  Runner.record list * summary
(** Records come back sorted by {!Runner.compare_order}; failed points
    are absent from the list and counted in the summary.  [on_record]
    fires in completion order as results arrive (the JSONL stream);
    [on_retry] fires when a point's attempt failed and it is being
    rescheduled after [backoff] seconds.
    Defaults: [procs = 0], [timeout = 600.], [retries = 1],
    [cache_dir = "_sweep"], [checkpoint_every = 20_000].

    Crash recovery (forked mode): each in-flight point checkpoints its
    engine to [<cache_dir>/ckpt/<key>.snap] every [checkpoint_every]
    cycles (0 disables), a retried point resumes from that file
    instead of restarting, and the file is deleted once the point
    lands in the cache — so an interrupted sweep repeats only the
    cycles since the last checkpoint.  On SIGINT/SIGTERM the pool
    kills and reaps every worker, torn temp files are swept, and
    {!Pool.Interrupted} escapes to the caller; completed points are
    already in the cache. *)

val to_json : Grid.spec -> summary -> Runner.record list -> Ooo_common.Stats.Json.t
(** The [sweep.json] document (schema ["straight-sweep/1"]). *)
