(** Sweep orchestration: expand a grid, serve what the cache already
    knows, fan the rest out over the {!Pool}, persist each fresh result,
    and aggregate.

    [procs = 0] runs every point in-process (no fork) — the mode the
    test suite uses; [procs >= 1] forks that many workers. *)

type summary = {
  total : int;
  executed : int;       (** points simulated this invocation *)
  cached : int;         (** points served from the on-disk cache *)
  failed : int;         (** points whose retries were exhausted *)
  wall_seconds : float;
}

val sweep :
  ?procs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?cache_dir:string ->
  ?on_record:(Runner.record -> unit) ->
  Grid.spec ->
  Runner.record list * summary
(** Records come back sorted by {!Runner.compare_order}; failed points
    are absent from the list and counted in the summary.  [on_record]
    fires in completion order as results arrive (the JSONL stream).
    Defaults: [procs = 0], [timeout = 600.], [retries = 1],
    [cache_dir = "_sweep"]. *)

val to_json : Grid.spec -> summary -> Runner.record list -> Ooo_common.Stats.Json.t
(** The [sweep.json] document (schema ["straight-sweep/1"]). *)
