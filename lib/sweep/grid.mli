(** Declarative experiment grids over [Ooo_common.Params.t].

    A {!spec} names value lists for each microarchitectural axis the
    paper's evaluation sweeps (Figs. 12–14: machine width, window
    sizes, rename model, predictor, recovery idealization) plus the
    workload axis; {!expand} takes the cartesian product and yields
    concrete simulation points.  Axes the paper pins (cache hierarchy,
    latencies) stay at their Table-I values. *)

(** Which pipeline/rename model a point exercises.  [Ss_ckpt n] is the
    checkpointed-RMT superscalar of Section II-A with [n] checkpoints;
    the STRAIGHT variants select the back-end code level. *)
type machine = Ss | Ss_ckpt of int | Straight_raw | Straight_re

val machine_label : machine -> string
val machine_of_label : string -> machine option
(** Accepts ["ss"], ["ss-ckptN"], ["straight-raw"], ["straight-re"]. *)

type spec = {
  machines : machine list;
  widths : int list;
      (** issue width; 2 and 4 select the Table-I model pairs, other
          values scale the 4-way pair's window resources linearly *)
  robs : int option list;
      (** [None] keeps the model default; [Some n] overrides the ROB
          and rescales the RMT physical register file to [32 + n]
          (the bench ROB-sweep convention) *)
  scheds : int option list;   (** scheduler entries; [None] = default *)
  predictors : Ooo_common.Params.predictor_kind list;
  ideal : bool list;          (** Fig. 13 zero-penalty recovery knob *)
  workloads : string list;    (** resolved by {!workload} *)
  samples : Sample.Spec.t option list;
      (** simulation-fidelity axis: [None] simulates the point exactly;
          [Some spec] runs it through the interval sampler, so long
          workloads compose with the rest of the grid *)
  quick : bool;               (** smaller iteration counts *)
}

type point = {
  params : Ooo_common.Params.t;
  target : Straight_core.Experiment.target;
  workload : Workloads.t;
  machine : machine;
  width : int;
  sample : Sample.Spec.t option;
}

val workload_names : string list
(** Every name {!workload} resolves. *)

val workload : quick:bool -> string -> Workloads.t
(** @raise Invalid_argument on an unknown workload name. *)

val default : quick:bool -> spec
(** The 32-point grid behind [bin/sweep] with no axis flags: both
    pipelines, both Table-I widths, both predictors, real and ideal
    recovery, both paper benchmarks. *)

val smoke : spec
(** Two cheap points (CI cache-hit smoke test). *)

val golden : spec
(** The pinned 12-point regression grid (3 workloads x 2 widths x 2
    machines) whose per-point cycles and CPI stacks live in
    [test/sweep_golden.json]. *)

val expand : spec -> point list
(** Cartesian product in deterministic order (machines outermost,
    workloads innermost). *)
