(* STRAIGHT code generation (Section IV of the paper).

   The central obligation: every consumer must find each source operand at a
   statically known *distance* (number of dynamically executed instructions
   since the producer), identical along every control-flow path.

   Mechanics, per function:

   - Critical edges are split, so every merge block's predecessor has the
     merge as its unique successor.
   - Every merge block S gets an *entry frame*: an ordered list of values
     (live-ins plus phi defs).  Each predecessor ends with a "tail" that
     produces the frame values in order (RMOV padding, Fig. 8(c)), followed
     by exactly one terminator slot (J, or NOP when falling through,
     Fig. 9) — so distances at S's entry are path-independent.
   - Non-merge blocks inherit the distance environment of their unique
     predecessor.
   - Distance bounding: whenever a live value's distance approaches the
     configured maximum, a refresh batch of RMOVs re-produces all live
     values (Section IV-C-3).
   - Calling convention (Fig. 5/6): arguments are produced immediately
     before JAL; the return value immediately before JR; all caller values
     live across the call are spilled to the stack frame, because the
     callee's dynamic length is unknown.  SPADD materializes the frame
     base; SPADD 0 re-materializes it after calls.
   - RE+ (Section IV-D): producers are sunk into frame tails instead of
     RMOVs; the return address and call-crossing values are relayed
     through the stack (store-once, dominance-checked validity, lazy
     reload); shared address values are localized per use block; the frame
     base is re-materialized with SPADD 0 on demand instead of being
     carried in frames. *)

module Isa = Straight_isa.Isa
module Ir = Ssa_ir.Ir
module Analysis = Ssa_ir.Analysis
module IntSet = Analysis.IntSet

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

type opt_level = Raw | Re_plus

type config = {
  max_dist : int;     (* maximum source distance the code may use *)
  level : opt_level;
}

let default_config = { max_dist = Isa.max_dist; level = Re_plus }

(* Backend pseudo-values threaded through the same distance machinery as IR
   values. *)
let vk_retaddr = -2
let vk_frame_base = -1

(* The final frame size is only known once emission has decided every
   pressure spill, so prologue/epilogue SPADDs are emitted with these
   placeholder immediates and patched afterwards. *)
let spadd_alloc_marker = min_int / 2
let spadd_free_marker = max_int / 2

type item = string Isa.t Assembler.Asm.item

(* ---------- per-function emission state ---------- *)

type fstate = {
  cfg : Analysis.cfg;
  lv : Analysis.liveness;
  cfgc : config;
  func : Ir.func;
  globals : (string, int) Hashtbl.t;      (* symbol -> absolute address *)
  mutable items : item list;              (* reversed *)
  mutable idx : int;                      (* emission index of next insn *)
  pos : (int, int) Hashtbl.t;             (* value -> producer index *)
  mutable tmp : int;                      (* fresh pseudo-value keys *)
  (* liveness bookkeeping within the current block *)
  mutable remaining : (int, int) Hashtbl.t;
  mutable live_out : IntSet.t;
  mutable ra_live : bool;                 (* retaddr carried in registers *)
  mutable fb_live : bool;                 (* frame base carried in registers *)
  spill_slot : (int, int) Hashtbl.t;      (* value -> frame byte offset *)
  mutable next_slot : int;                (* next free frame byte offset *)
  mutable has_frame : bool;               (* prologue SPADD emitted *)
  mutable spilling : bool;                (* re-entrancy guard *)
  mutable held : int list;                (* values pinned across headroom
                                             checks inside one lowering
                                             sequence: refresh batches must
                                             re-position them even though
                                             the use-count bookkeeping does
                                             not know them (pseudo temps) *)
  def_of : (int, Ir.inst) Hashtbl.t;      (* IR value -> defining inst *)
  in_slot : (int, int list) Hashtbl.t;    (* value -> RPO indices of blocks
                                             whose spill stores wrote it; the
                                             slot is valid wherever any of
                                             them dominates *)
  idom : int array;                       (* immediate dominators (RPO) *)
  mutable cur_block : int;                (* RPO index being emitted *)
  ra_slot : int option;                   (* RE+: retaddr stack slot *)
  mutable frame_size : int;
  merge_frames : (int, int list) Hashtbl.t; (* block idx -> ordered frame *)
}

(* The short-form ST encodes a signed 6-bit *word* offset: the byte
   offset must be word aligned on top of the range check, or the encoder
   rejects the instruction long after codegen committed to it. *)
let st_short_form (off : int) : bool =
  off land 3 = 0
  && off >= Straight_isa.Encoding.st_min_offset
  && off <= Straight_isa.Encoding.st_max_offset

let block_label fname bid = Printf.sprintf ".L%s_%d" fname bid
let label_of st bid = block_label st.func.Ir.name bid
let func_label name = "f_" ^ name

let push st it = st.items <- it :: st.items

(* Emit one instruction with NO capacity checking (callers guarantee it). *)
let emit_raw st insn : int =
  let i = st.idx in
  push st (Assembler.Asm.Insn insn);
  st.idx <- i + 1;
  i

let define st v i = Hashtbl.replace st.pos v i

let dist_of st v : int option =
  match Hashtbl.find_opt st.pos v with
  | Some p -> Some (st.idx - p)
  | None -> None

let dist_exn st v =
  match dist_of st v with
  | Some d ->
    if d < 1 || d > st.cfgc.max_dist then
      fail "%s: distance %d for value %d out of range (max %d)"
        st.func.Ir.name d v st.cfgc.max_dist;
    d
  | None -> fail "%s: value %d has no position" st.func.Ir.name v

let fresh_tmp st =
  st.tmp <- st.tmp - 1;
  st.tmp

(* Values that must remain reachable at the current point. *)
let live_values st : int list =
  let base =
    Hashtbl.fold
      (fun v p acc ->
         ignore p;
         if v >= 0
            && ((match Hashtbl.find_opt st.remaining v with
                 | Some n -> n > 0
                 | None -> false)
                || IntSet.mem v st.live_out)
         then v :: acc
         else acc)
      st.pos []
  in
  (* Pseudo values participate in refresh batches whenever they are
     positioned: the return address while carried, and the frame base
     between its (re-)materialization and its uses. *)
  let base = if Hashtbl.mem st.pos vk_retaddr then vk_retaddr :: base else base in
  let base = if Hashtbl.mem st.pos vk_frame_base then vk_frame_base :: base else base in
  (* held values: mid-sequence temporaries (and operands resolved to
     temporaries) that must survive any refresh batch fired between their
     definition and their use *)
  List.fold_left
    (fun acc v ->
       if Hashtbl.mem st.pos v && not (List.mem v acc) then v :: acc else acc)
    base st.held

(* Pin [v] across the headroom checks of the current lowering sequence:
   refresh batches re-position it, and spill_pressure counts it.  Always
   balanced with [unhold] inside a single instruction's lowering; the held
   list is empty at block boundaries. *)
let hold st v = st.held <- v :: st.held

let unhold st v =
  let rec drop_one = function
    | [] -> []
    | x :: tl -> if x = v then tl else x :: drop_one tl
  in
  st.held <- drop_one st.held

(* The spill slot of [v] holds its value at the current point iff the
   store site dominates the current block (slots are written once per value
   and never overwritten — SSA). *)
let slot_valid st v =
  match Hashtbl.find_opt st.in_slot v with
  | Some store_blocks ->
    Array.length st.idom > 0
    && List.exists
         (fun b -> Analysis.dominates st.idom b st.cur_block)
         store_blocks
  | None -> false

(* Under register pressure — more live values than the maximum distance can
   keep addressable through a frame tail — spill the values with no
   remaining use in the current block to their frame slots (the paper's
   "storing such variables in the stack frame", Section IV-D) and drop
   them from the distance environment; they reload lazily at their next
   use.  Spills run farthest-first, so every store reads within range. *)
let spill_pressure st ~(live : int list) ~(headroom : int) =
  if not st.has_frame then
    fail "%s: %d live values exceed max distance %d and the function has \
          no frame to spill into"
      st.func.Ir.name (List.length live) st.cfgc.max_dist;
  st.spilling <- true;
  (* keep values still needed in this block; spill the rest (live-out
     only), farthest first *)
  let spillable =
    List.filter
      (fun v ->
         v >= 0
         && (match Hashtbl.find_opt st.remaining v with
             | Some n -> n = 0
             | None -> true))
      live
    |> List.map (fun v -> (v, st.idx - Hashtbl.find st.pos v))
    |> List.sort (fun (_, d1) (_, d2) -> compare d2 d1)
  in
  let n_live = ref (List.length live) in
  (* re-materialize the frame base first so the stores can address it *)
  let fb_idx = emit_raw st (Isa.Spadd 0) in
  Hashtbl.replace st.pos vk_frame_base fb_idx;
  List.iter
    (fun (v, _) ->
       if !n_live + headroom - 1 > st.cfgc.max_dist then begin
         let off =
           match Hashtbl.find_opt st.spill_slot v with
           | Some off -> off
           | None ->
             let off = st.next_slot in
             st.next_slot <- off + 4;
             Hashtbl.replace st.spill_slot v off;
             off
         in
         if not (slot_valid st v) then begin
           let d = st.idx - Hashtbl.find st.pos v in
           if d < 1 || d > st.cfgc.max_dist then
             fail "%s: pressure spill of value %d at distance %d"
               st.func.Ir.name v d;
           if st_short_form off then
             ignore
               (emit_raw st
                  (Isa.St (d, st.idx - Hashtbl.find st.pos vk_frame_base, off)))
           else begin
             let a =
               emit_raw st
                 (Isa.Alui
                    (Isa.Addi,
                     st.idx - Hashtbl.find st.pos vk_frame_base,
                     Int32.of_int off))
             in
             ignore
               (emit_raw st (Isa.St (st.idx - Hashtbl.find st.pos v, st.idx - a, 0)))
           end;
           let prev = Option.value ~default:[] (Hashtbl.find_opt st.in_slot v) in
           Hashtbl.replace st.in_slot v (st.cur_block :: prev)
         end;
         Hashtbl.remove st.pos v;
         decr n_live
       end)
    spillable;
  st.spilling <- false;
  if !n_live + headroom - 1 > st.cfgc.max_dist then
    fail "%s: register pressure (%d values needed in the current block) \
          exceeds max distance %d"
      st.func.Ir.name !n_live st.cfgc.max_dist

(* Refresh every live value with an RMOV, farthest first.  Producer
   positions are refreshed once each in descending distance order, so no
   read ever reaches beyond the current maximum distance; values aliasing
   one position (a pseudo temp pinned to an IR value's producer) move
   together, keeping the refreshed distances pairwise distinct. *)
let refresh_all st =
  let live = live_values st in
  let by_pos = Hashtbl.create 16 in
  List.iter
    (fun v ->
       let p = Hashtbl.find st.pos v in
       let prev = Option.value ~default:[] (Hashtbl.find_opt by_pos p) in
       Hashtbl.replace by_pos p (v :: prev))
    live;
  let groups = Hashtbl.fold (fun p vs acc -> (p, vs) :: acc) by_pos [] in
  let sorted = List.sort (fun (p1, _) (p2, _) -> compare p1 p2) groups in
  List.iter
    (fun (_, vs) ->
       let d = dist_exn st (List.hd vs) in
       let i = emit_raw st (Isa.Rmov d) in
       List.iter (fun v -> define st v i) vs)
    sorted

(* Ensure that [headroom] more instructions can be emitted before any live
   value's distance would exceed the maximum. *)
let ensure_headroom st headroom =
  let live = live_values st in
  let maxd =
    List.fold_left
      (fun acc v -> max acc (st.idx - Hashtbl.find st.pos v))
      0 live
  in
  (* refresh exactly when some live value would end up beyond the maximum
     after [headroom] more instructions *)
  if (not st.spilling) && maxd + headroom > st.cfgc.max_dist then begin
    (* after a refresh the live values sit at distances 1..n_live; the
       batch only helps if the worst-case read — the farthest value
       consumed by the last of the [headroom] instructions — still fits.
       Values aliasing one producer position share one refresh slot, so
       count distinct positions, not values. *)
    let n_live =
      List.length
        (List.sort_uniq compare
           (List.map (fun v -> Hashtbl.find st.pos v) live))
    in
    if n_live + headroom - 1 > st.cfgc.max_dist then
      spill_pressure st ~live ~headroom;
    refresh_all st
  end

(* Checked emission used for ordinary instructions. *)
let emit st insn : int =
  ensure_headroom st 1;
  emit_raw st insn


(* Record one consumed use of an IR value. *)
let consume st v =
  if v >= 0 then
    match Hashtbl.find_opt st.remaining v with
    | Some n when n > 0 -> Hashtbl.replace st.remaining v (n - 1)
    | _ -> ()

(* ---------- constants ---------- *)

let fits_imm16 (v : int32) = v >= -32768l && v <= 32767l

(* Materialize a 32-bit constant; returns the pseudo-value holding it.
   1 instruction for imm16/LUI-able values, 2 otherwise. *)
let materialize_const st (c : int32) : int =
  let t = fresh_tmp st in
  if fits_imm16 c then begin
    let i = emit st (Isa.Alui (Isa.Addi, 0, c)) in
    define st t i
  end
  else begin
    let lo = Int32.of_int ((Int32.to_int c + 32768) land 0xFFFF - 32768) in
    let hi =
      Int32.to_int (Int32.sub c lo) lsr 12 land 0xFFFFF |> Int32.of_int
    in
    let i = emit st (Isa.Lui hi) in
    define st t i;
    if lo <> 0l then begin
      hold st t;
      ensure_headroom st 1;
      let d = dist_exn st t in
      let i2 = emit_raw st (Isa.Alui (Isa.Addi, d, lo)) in
      define st t i2;
      unhold st t
    end
  end;
  t

(* Resolve an operand to a value key holding it, materializing constants. *)
let operand_value st (op : Ir.operand) : int =
  match op with
  | Ir.Val v -> v
  | Ir.Const c -> materialize_const st c

(* ---------- instruction selection for one IR instruction ---------- *)

let alui_of_binop : Ir.binop -> Isa.alui_op option = function
  | Ir.Add -> Some Isa.Addi
  | Ir.And -> Some Isa.Andi
  | Ir.Or -> Some Isa.Ori
  | Ir.Xor -> Some Isa.Xori
  | Ir.Shl -> Some Isa.Slli
  | Ir.Lshr -> Some Isa.Srli
  | Ir.Ashr -> Some Isa.Srai
  | _ -> None

(* Shift-by-constant is defined modulo 32 (eval_alu reads only the low
   five bits); the encoder rejects SLLi/SRLi/SRAi immediates outside
   [0,31], so reduce before emitting the immediate form. *)
let norm_binop_imm (op : Ir.binop) (c : int32) : int32 =
  match op with
  | Ir.Shl | Ir.Lshr | Ir.Ashr -> Int32.logand c 31l
  | _ -> c

let alu_of_binop : Ir.binop -> Isa.alu_op = function
  | Ir.Add -> Isa.Add | Ir.Sub -> Isa.Sub | Ir.Mul -> Isa.Mul
  | Ir.Div -> Isa.Div | Ir.Divu -> Isa.Divu | Ir.Rem -> Isa.Rem
  | Ir.Remu -> Isa.Remu | Ir.And -> Isa.And | Ir.Or -> Isa.Or
  | Ir.Xor -> Isa.Xor | Ir.Shl -> Isa.Sll | Ir.Lshr -> Isa.Srl
  | Ir.Ashr -> Isa.Sra

let commutative : Ir.binop -> bool = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

(* Emit `result := binop a b` and return the defining index. *)
let emit_binop st op (a : Ir.operand) (b : Ir.operand) : int =
  let imm_form v c =
    let c = norm_binop_imm op c in
    match alui_of_binop op with
    | Some aop when fits_imm16 c ->
      (* headroom first: a refresh batch would invalidate distances
         computed before it *)
      ensure_headroom st 1;
      Some (emit_raw st (Isa.Alui (aop, dist_exn st v, c)))
    | _ -> None
  in
  match op, a, b with
  | _, Ir.Val v, Ir.Const c ->
    (match imm_form v c with
     | Some i -> i
     | None ->
       (* sub with small constant folds into addi of the negation *)
       if op = Ir.Sub && fits_imm16 (Int32.neg c) then begin
         ensure_headroom st 1;
         emit_raw st (Isa.Alui (Isa.Addi, dist_exn st v, Int32.neg c))
       end
       else begin
         let t = materialize_const st c in
         hold st t;
         ensure_headroom st 1;
         let i =
           emit_raw st
             (Isa.Alu (alu_of_binop op, dist_exn st v, dist_exn st t))
         in
         unhold st t; i
       end)
  | _, Ir.Const c, Ir.Val v when commutative op ->
    (match imm_form v c with
     | Some i -> i
     | None ->
       let t = materialize_const st c in
       hold st t;
       ensure_headroom st 1;
       let i = emit_raw st (Isa.Alu (alu_of_binop op, dist_exn st t, dist_exn st v)) in
       unhold st t; i)
  | _, Ir.Const ca, Ir.Const cb ->
    (* the optimizer folds these, but stay correct regardless *)
    let ta = materialize_const st ca in
    hold st ta;
    let tb = materialize_const st cb in
    hold st tb;
    ensure_headroom st 1;
    let i = emit_raw st (Isa.Alu (alu_of_binop op, dist_exn st ta, dist_exn st tb)) in
    unhold st tb; unhold st ta; i
  | _, Ir.Const c, Ir.Val v ->
    let t = materialize_const st c in
    hold st t;
    ensure_headroom st 1;
    let i = emit_raw st (Isa.Alu (alu_of_binop op, dist_exn st t, dist_exn st v)) in
    unhold st t; i
  | _, Ir.Val va, Ir.Val vb ->
    ensure_headroom st 1;
    emit_raw st (Isa.Alu (alu_of_binop op, dist_exn st va, dist_exn st vb))

(* Emit a comparison producing 0/1.  Returns the defining index. *)
let emit_cmp st op (a : Ir.operand) (b : Ir.operand) : int =
  let val_of = operand_value st in
  (* resolve both operands; the first (possibly a constant temp) must
     survive the materialization of the second *)
  let val2 a b =
    let x = val_of a in
    hold st x;
    let y = val_of b in
    unhold st x;
    (x, y)
  in
  let negate i =
    (* invert a 0/1 value *)
    let t = fresh_tmp st in
    define st t i;
    hold st t;
    ensure_headroom st 1;
    let r = emit_raw st (Isa.Alui (Isa.Xori, dist_exn st t, 1l)) in
    unhold st t; r
  in
  let slt signed x y =
    let op = if signed then Isa.Slt else Isa.Sltu in
    hold st x; hold st y;
    ensure_headroom st 1;
    let r = emit_raw st (Isa.Alu (op, dist_exn st x, dist_exn st y)) in
    unhold st y; unhold st x; r
  in
  match op with
  | Ir.Lt ->
    (match b with
     | Ir.Const c when fits_imm16 c ->
       let x = val_of a in
       hold st x;
       ensure_headroom st 1;
       let r = emit_raw st (Isa.Alui (Isa.Slti, dist_exn st x, c)) in
       unhold st x; r
     | _ ->
       let x, y = val2 a b in
       slt true x y)
  | Ir.Ltu ->
    (match b with
     | Ir.Const c when fits_imm16 c ->
       let x = val_of a in
       hold st x;
       ensure_headroom st 1;
       let r = emit_raw st (Isa.Alui (Isa.Sltui, dist_exn st x, c)) in
       unhold st x; r
     | _ ->
       let x, y = val2 a b in
       slt false x y)
  | Ir.Ge ->
    let x, y = val2 a b in
    negate (slt true x y)
  | Ir.Geu ->
    let x, y = val2 a b in
    negate (slt false x y)
  | Ir.Gt ->
    let x, y = val2 a b in
    slt true y x
  | Ir.Le ->
    let x, y = val2 a b in
    negate (slt true y x)
  | Ir.Eq | Ir.Ne ->
    (* xor, then compare against zero *)
    let diff_idx =
      match a, b with
      | x, Ir.Const 0l | Ir.Const 0l, x ->
        let v = val_of x in
        Hashtbl.find st.pos v
      | _ ->
        let x, y = val2 a b in
        hold st x; hold st y;
        ensure_headroom st 1;
        let r = emit_raw st (Isa.Alu (Isa.Xor, dist_exn st x, dist_exn st y)) in
        unhold st y; unhold st x; r
    in
    let t = fresh_tmp st in
    define st t diff_idx;
    hold st t;
    let r =
      if op = Ir.Eq then begin
        ensure_headroom st 1;
        emit_raw st (Isa.Alui (Isa.Sltui, dist_exn st t, 1l))
      end
      else begin
        ensure_headroom st 1;
        (* 0 <u x  <=>  x <> 0 *)
        emit_raw st (Isa.Alu (Isa.Sltu, 0, dist_exn st t))
      end
    in
    unhold st t; r

(* ---------- frame base handling ---------- *)

(* Obtain the frame-base value key, re-materializing it with SPADD 0 when it
   is not carried (RE+, or after a call). *)
let frame_base st : int =
  match dist_of st vk_frame_base with
  | Some d when d >= 1 && d < st.cfgc.max_dist -> vk_frame_base
  | _ ->
    (* not carried (RE+), expired, or wiped by a call: SPADD 0 copies the
       architectural SP into a fresh register *)
    let i = emit st (Isa.Spadd 0) in
    define st vk_frame_base i;
    vk_frame_base

let emit_store_to_frame st ~value_key ~offset =
  let fb = frame_base st in
  if st_short_form offset then begin
    ensure_headroom st 1;
    ignore (emit_raw st (Isa.St (dist_exn st value_key, dist_exn st fb, offset)))
  end
  else begin
    let t = fresh_tmp st in
    ensure_headroom st 1;
    let i = emit_raw st (Isa.Alui (Isa.Addi, dist_exn st fb, Int32.of_int offset)) in
    define st t i;
    hold st t;
    ensure_headroom st 1;
    ignore (emit_raw st (Isa.St (dist_exn st value_key, dist_exn st t, 0)));
    unhold st t
  end

let emit_load_from_frame st ~offset : int =
  let fb = frame_base st in
  ensure_headroom st 1;
  emit_raw st (Isa.Ld (dist_exn st fb, offset))

(* Make sure value [v] has a register position: reload it lazily from its
   spill slot, or re-execute a rematerializable producer (RE+ lazy reload
   after calls; cf. the stack relays of Fig. 10(c)). *)
let ensure_positioned st v =
  if v >= 0 && not (Hashtbl.mem st.pos v) then begin
    if slot_valid st v then begin
      let off =
        match Hashtbl.find_opt st.spill_slot v with
        | Some off -> off
        | None -> fail "%s: value %d slotted without a slot" st.func.Ir.name v
      in
      let i = emit_load_from_frame st ~offset:off in
      define st v i
    end
    else
      match Hashtbl.find_opt st.def_of v with
      | Some (Ir.Global_addr sym) ->
        (match Hashtbl.find_opt st.globals sym with
         | Some addr ->
           let t = materialize_const st (Int32.of_int addr) in
           define st v (Hashtbl.find st.pos t)
         | None -> fail "%s: unknown global %s" st.func.Ir.name sym)
      | Some (Ir.Frame_addr off) ->
        let fb = frame_base st in
        ensure_headroom st 1;
        let i =
          emit_raw st (Isa.Alui (Isa.Addi, dist_exn st fb, Int32.of_int off))
        in
        define st v i
      | def ->
        fail "%s: value %d has no position (slot=%s cur_block=%d def=%s)"
          st.func.Ir.name v
          (match Hashtbl.find_opt st.in_slot v with
           | Some bs -> String.concat "/" (List.map string_of_int bs)
           | None -> "none")
          st.cur_block
          (match def with Some _ -> "yes" | None -> "no")
  end

let prep_uses st (inst : Ir.inst) =
  List.iter (ensure_positioned st) (Ir.inst_uses inst)

(* ---------- per-block planning (phase A) ---------- *)

(* What occupies one tail slot of a merge predecessor. *)
type slot =
  | Slot_rmov of int                  (* RMOV of an existing value *)
  | Slot_const of int32               (* single-instruction constant *)
  | Slot_bigconst of int32            (* pre-materialized before the tail *)
  | Slot_sunk of Ir.value * Ir.inst   (* RE+: the producer itself *)
  | Slot_reload of int * int          (* value, frame offset: LD in place *)
  | Slot_fb                           (* frame base: SPADD 0 in place *)

type block_plan = {
  body : (Ir.value * Ir.inst) list;   (* phis dropped, sunk insts removed *)
  (* tail for a Br-to-merge terminator: one slot per frame entry *)
  tail : (int (* frame value *) * slot) list;
  mem_tail : bool;
  (* high register pressure: the tail is emitted as loads from the frame
     (each value parked in its stack slot beforehand), so feasibility
     depends on the frame length only *)
  call_spills : (Ir.value, Ir.value list) Hashtbl.t; (* call result -> spills *)
}

(* A single-instruction pure producer can be sunk into a frame slot. *)
let sinkable_inst (inst : Ir.inst) =
  match inst with
  | Ir.Bin (op, Ir.Val _, Ir.Const c) ->
    (match alui_of_binop op with
     | Some _ -> fits_imm16 (norm_binop_imm op c)
     | None -> op = Ir.Sub && fits_imm16 (Int32.neg c))
  | Ir.Bin (_, Ir.Val _, Ir.Val _) -> true
  | Ir.Bin (op, Ir.Const c, Ir.Val _) ->
    commutative op
    && (match alui_of_binop op with Some _ -> fits_imm16 c | None -> false)
  | Ir.Frame_addr _ -> true
  | _ -> false

(* Compute the tail-slot sources for predecessor [b] entering merge frame
   [frame] (phi defs take the arm for this predecessor). *)
let tail_sources st (b : Ir.block) (succ_idx : int) (frame : int list) :
  (int * Ir.operand) list =
  let succ_block = st.cfg.Analysis.blocks.(succ_idx) in
  let phi_arm v =
    List.find_map
      (fun (v', inst) ->
         match inst with
         | Ir.Phi arms when v' = v ->
           (match List.assoc_opt b.Ir.bid arms with
            | Some op -> Some op
            | None ->
              fail "%s: phi %%%d misses arm for bb%d" st.func.Ir.name v b.Ir.bid)
         | _ -> None)
      succ_block.Ir.insts
  in
  List.map
    (fun fv ->
       if fv < 0 then (fv, Ir.Val fv)  (* pseudo values relay themselves *)
       else
         match phi_arm fv with
         | Some op -> (fv, op)
         | None -> (fv, Ir.Val fv))
    frame

let plan_block st (b : Ir.block) : block_plan =
  let bi = Analysis.block_index st.cfg b.Ir.bid in
  let body0 =
    List.filter (fun (_, inst) -> not (Ir.is_phi inst)) b.Ir.insts
  in
  (* tail (only for Br into a merge block) *)
  let tail_spec =
    match b.Ir.term with
    | Ir.Br t ->
      let ti = Analysis.block_index st.cfg t in
      (match Hashtbl.find_opt st.merge_frames ti with
       | Some frame -> Some (ti, frame)
       | None -> None)
    | _ -> None
  in
  match tail_spec with
  | None ->
    { body = body0; tail = []; mem_tail = false;
      call_spills = Hashtbl.create 1 }
  | Some (ti, frame) ->
    let sources = tail_sources st b ti frame in
    let mem_tail = (2 * (List.length frame + 2)) > st.cfgc.max_dist in
    (* count uses of each value inside the body (to veto sinking) *)
    let body_use_count = Hashtbl.create 16 in
    let bump v =
      Hashtbl.replace body_use_count v
        (1 + Option.value ~default:0 (Hashtbl.find_opt body_use_count v))
    in
    List.iter (fun (_, inst) -> List.iter bump (Ir.inst_uses inst)) body0;
    List.iter bump (Ir.term_uses b.Ir.term);
    let defs_in_b = Hashtbl.create 16 in
    List.iter (fun (v, inst) -> Hashtbl.replace defs_in_b v inst) body0;
    let sunk = Hashtbl.create 4 in
    let slots =
      List.map
        (fun (fv, src) ->
           match src with
           | Ir.Const c when fits_imm16 c -> (fv, Slot_const c)
           | Ir.Const c -> (fv, Slot_bigconst c)
           | Ir.Val v ->
             if st.cfgc.level = Re_plus && (not mem_tail)
                && (not (Hashtbl.mem sunk v))
                && (match Hashtbl.find_opt defs_in_b v with
                    | Some inst ->
                      sinkable_inst inst
                      && not (Hashtbl.mem body_use_count v)
                      (* operands must not themselves be sunk *)
                      && List.for_all
                           (fun u -> not (Hashtbl.mem sunk u))
                           (Ir.inst_uses inst)
                    | None -> false)
             then begin
               Hashtbl.replace sunk v ();
               (fv, Slot_sunk (v, Hashtbl.find defs_in_b v))
             end
             else (fv, Slot_rmov v))
        sources
    in
    let body =
      List.filter (fun (v, _) -> not (Hashtbl.mem sunk v)) body0
    in
    ignore bi;
    { body; tail = slots; mem_tail; call_spills = Hashtbl.create 1 }

(* Backward scan computing, for every call, the set of IR values live just
   after it (those must be spilled around the call). *)
let compute_call_spills st (b : Ir.block) (plan : block_plan) : unit =
  let bi = Analysis.block_index st.cfg b.Ir.bid in
  let live = ref st.lv.Analysis.live_out.(bi) in
  (* terminator + tail uses *)
  List.iter (fun v -> live := IntSet.add v !live) (Ir.term_uses b.Ir.term);
  List.iter
    (fun (_, slot) ->
       match slot with
       | Slot_rmov v when v >= 0 -> live := IntSet.add v !live
       | Slot_sunk (_, inst) ->
         List.iter (fun u -> live := IntSet.add u !live) (Ir.inst_uses inst)
       | _ -> ())
    plan.tail;
  (* sunk defs are not live before the tail in the backward direction *)
  List.iter
    (fun (_, slot) ->
       match slot with
       | Slot_sunk (v, _) -> live := IntSet.remove v !live
       | _ -> ())
    plan.tail;
  List.iter
    (fun (v, inst) ->
       (match inst with
        | Ir.Call (_, _) ->
          Hashtbl.replace plan.call_spills v
            (IntSet.elements (IntSet.remove v !live))
        | _ -> ());
       live := IntSet.remove v !live;
       List.iter (fun u -> live := IntSet.add u !live) (Ir.inst_uses inst))
    (List.rev plan.body)

(* ---------- emission (phase B) ---------- *)

let emit_ir_inst st (v : Ir.value) (inst : Ir.inst)
    ~(slot_of : Ir.value -> int) : unit =
  (match inst with Ir.Phi _ | Ir.Call _ -> () | _ -> prep_uses st inst);
  match inst with
  | Ir.Phi _ -> ()
  | Ir.Bin (op, a, b) ->
    let i = emit_binop st op a b in
    List.iter (consume st) (Ir.inst_uses inst);
    define st v i
  | Ir.Cmp (op, a, b) ->
    let i = emit_cmp st op a b in
    List.iter (consume st) (Ir.inst_uses inst);
    define st v i
  | Ir.Load (addr, off) ->
    let i =
      match addr with
      | Ir.Const c ->
        let t = materialize_const st (Int32.add c (Int32.of_int off)) in
        hold st t;
        ensure_headroom st 1;
        let r = emit_raw st (Isa.Ld (dist_exn st t, 0)) in
        unhold st t; r
      | Ir.Val a ->
        ensure_headroom st 1;
        emit_raw st (Isa.Ld (dist_exn st a, off))
    in
    List.iter (consume st) (Ir.inst_uses inst);
    define st v i
  | Ir.Store (x, addr, off) ->
    let xv = operand_value st x in
    hold st xv;
    let i =
      match addr with
      | Ir.Const c ->
        let t = materialize_const st (Int32.add c (Int32.of_int off)) in
        hold st t;
        ensure_headroom st 1;
        let r = emit_raw st (Isa.St (dist_exn st xv, dist_exn st t, 0)) in
        unhold st t; r
      | Ir.Val a ->
        if st_short_form off then begin
          ensure_headroom st 1;
          emit_raw st (Isa.St (dist_exn st xv, dist_exn st a, off))
        end
        else begin
          let t = fresh_tmp st in
          ensure_headroom st 1;
          let ai = emit_raw st (Isa.Alui (Isa.Addi, dist_exn st a, Int32.of_int off)) in
          define st t ai;
          hold st t;
          ensure_headroom st 1;
          let r = emit_raw st (Isa.St (dist_exn st xv, dist_exn st t, 0)) in
          unhold st t; r
        end
    in
    unhold st xv;
    List.iter (consume st) (Ir.inst_uses inst);
    define st v i  (* ST returns the stored value *)
  | Ir.Frame_addr off ->
    let fb = frame_base st in
    ensure_headroom st 1;
    let i = emit_raw st (Isa.Alui (Isa.Addi, dist_exn st fb, Int32.of_int off)) in
    define st v i
  | Ir.Global_addr sym ->
    (match Hashtbl.find_opt st.globals sym with
     | None -> fail "%s: unknown global %s" st.func.Ir.name sym
     | Some addr ->
       let t = materialize_const st (Int32.of_int addr) in
       (* rebind the constant's position to the IR value *)
       define st v (Hashtbl.find st.pos t))
  | Ir.Call (_, _) ->
    ignore slot_of;
    fail "calls are lowered by emit_call, not emit_ir_inst"

(* Values whose defining instruction can simply be re-executed after a
   call instead of being spilled: global/frame addresses (RE+ only; the
   spill costs ST+LD where re-materialization costs at most the same and
   frees the store). *)
let rematerializable st v =
  st.cfgc.level = Re_plus
  && (match Hashtbl.find_opt st.def_of v with
      | Some (Ir.Global_addr _) | Some (Ir.Frame_addr _) -> true
      | _ -> false)

(* Lower a call: spill live-across values, arrange arguments contiguously
   before JAL (Fig. 5), wipe the distance environment (the callee's dynamic
   length is unknown), bind the result at its conventional distance, then
   re-materialize the frame base and reload spills. *)
let emit_call st (v : Ir.value) fname (args : Ir.operand list)
    ~(spills : Ir.value list) ~(slot_of : Ir.value -> int) : unit =
  let remat, spills = List.partition (rematerializable st) spills in
  (* 1. spill every value live across the call (plus the carried return
     address in RAW mode).  Values are immutable (SSA), so a slot already
     written on every path is still valid: store once (RE+). *)
  List.iter
    (fun w ->
       if st.cfgc.level = Raw || not (slot_valid st w) then begin
         ensure_positioned st w;
         emit_store_to_frame st ~value_key:w ~offset:(slot_of w);
         let prev = Option.value ~default:[] (Hashtbl.find_opt st.in_slot w) in
         Hashtbl.replace st.in_slot w (st.cur_block :: prev)
       end)
    spills;
  if st.ra_live then
    emit_store_to_frame st ~value_key:vk_retaddr ~offset:(slot_of vk_retaddr);
  (* 2. pre-materialize argument constants the inline ADDi form below
     cannot carry.  "One instruction to materialize" is the wrong test
     here: a LUI-able constant (low 12 bits clear, e.g. 0x80000000)
     costs one instruction but still does not fit the ADDi imm16. *)
  let args =
    List.map
      (fun a ->
         match a with
         | Ir.Const c when not (fits_imm16 c) ->
           let t = materialize_const st c in
           (* pinned until the argument RMOVs are out: later argument
              materializations and the pre-JAL headroom batch must keep
              repositioning it *)
           hold st t;
           Ir.Val t
         | _ -> a)
      args
  in
  let n_args = List.length args in
  List.iter
    (fun a -> match a with Ir.Val w -> ensure_positioned st w | Ir.Const _ -> ())
    args;
  (* 3. contiguous argument producers + JAL: no refresh inside.  Headroom
     is reserved before checking argument positions (a refresh batch would
     shift them). *)
  ensure_headroom st (n_args + 1);
  (* arguments may already sit at their conventional distances (producers
     arranged just before the call): skip the RMOV padding then (RE+) *)
  let in_position =
    st.cfgc.level = Re_plus
    && args <> []
    && List.mapi (fun k a -> (k, a)) args
       |> List.for_all (fun (k, a) ->
           match a with
           | Ir.Val w ->
             (match Hashtbl.find_opt st.pos w with
              | Some p -> p = st.idx - (n_args - k)
              | None -> false)
           | Ir.Const _ -> false)
  in
  if not in_position then
    List.iter
      (fun a ->
         match a with
         | Ir.Const c -> ignore (emit_raw st (Isa.Alui (Isa.Addi, 0, c)))
         | Ir.Val w -> ignore (emit_raw st (Isa.Rmov (dist_exn st w))))
      args;
  let jal_idx = emit_raw st (Isa.Jal (func_label fname)) in
  List.iter
    (fun a ->
       match a with
       | Ir.Val w when w < 0 -> unhold st w
       | Ir.Val w -> consume st w
       | Ir.Const _ -> ())
    args;
  (* 4. environment wipe: every pre-call position is now meaningless *)
  Hashtbl.reset st.pos;
  (* retval sits immediately before the callee's JR: distance 2 right after
     the JAL in the caller's stream *)
  define st v (jal_idx - 1);
  (* 5. reload spills through a fresh frame base; re-execute the
     rematerializable producers *)
  if st.ra_live then begin
    let i = emit_load_from_frame st ~offset:(slot_of vk_retaddr) in
    define st vk_retaddr i
  end;
  (match st.cfgc.level with
   | Raw ->
     List.iter
       (fun w ->
          let i = emit_load_from_frame st ~offset:(slot_of w) in
          define st w i)
       spills
   | Re_plus ->
     (* lazy: values are reloaded / rematerialized at their next use *)
     ());
  ignore remat

(* Snapshot the register positions as distances at the next index (spill
   slot residency needs no snapshot: it is governed by dominance). *)
type env_snapshot = { positions : (int * int) list }

let snapshot st : env_snapshot =
  { positions =
      Hashtbl.fold
        (fun v p acc ->
           if v >= 0 || v = vk_retaddr || v = vk_frame_base then
             (v, st.idx - p) :: acc
           else acc)
        st.pos [] }

let install_snapshot st (snap : env_snapshot) =
  Hashtbl.reset st.pos;
  List.iter (fun (v, d) -> Hashtbl.replace st.pos v (st.idx - d)) snap.positions

(* ---------- STRAIGHT-specific pre-pass: localization ---------- *)

(* Shared zero-operand address values (Global_addr/Frame_addr, typically
   produced by CSE/LICM) are cheap to recompute but expensive to keep
   alive: every merge frame on the way relays them.  Re-materializing a
   private copy in each using block is the profitable trade on STRAIGHT
   (cf. the paper's Fig. 10(b): regenerate values instead of relaying).
   The superscalar back end keeps the shared value — it has registers to
   spare. *)
let localize_addresses (f : Ir.func) : unit =
  let defs = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
       List.iter
         (fun (v, inst) ->
            match inst with
            | Ir.Global_addr _ | Ir.Frame_addr _ ->
              Hashtbl.replace defs v (inst, b.Ir.bid)
            | _ -> ())
         b.Ir.insts)
    f.Ir.blocks;
  if Hashtbl.length defs > 0 then
    List.iter
      (fun (b : Ir.block) ->
         (* one private copy per (value, block), created on first use *)
         let local = Hashtbl.create 4 in
         let subst op =
           match op with
           | Ir.Val v ->
             (match Hashtbl.find_opt defs v with
              | Some (inst, def_bid) when def_bid <> b.Ir.bid ->
                ignore inst;
                let v' =
                  match Hashtbl.find_opt local v with
                  | Some v' -> v'
                  | None ->
                    let v' = Ir.fresh_value f in
                    Hashtbl.replace local v v';
                    v'
                in
                Ir.Val v'
              | _ -> op)
           | Ir.Const _ -> op
         in
         b.Ir.insts <-
           List.map
             (fun (v, inst) ->
                ( v,
                  match inst with
                  | Ir.Bin (op, a, x) -> Ir.Bin (op, subst a, subst x)
                  | Ir.Cmp (op, a, x) -> Ir.Cmp (op, subst a, subst x)
                  | Ir.Load (a, o) -> Ir.Load (subst a, o)
                  | Ir.Store (x, a, o) -> Ir.Store (subst x, subst a, o)
                  | Ir.Call (g, args) -> Ir.Call (g, List.map subst args)
                  (* phi arms are uses in the predecessor, not here *)
                  | Ir.Phi arms -> Ir.Phi arms
                  | Ir.Frame_addr _ | Ir.Global_addr _ -> inst ))
             b.Ir.insts;
         b.Ir.term <-
           (match b.Ir.term with
            | Ir.Ret op -> Ir.Ret (subst op)
            | Ir.Br t -> Ir.Br t
            | Ir.Cond_br (c, t1, t2) -> Ir.Cond_br (subst c, t1, t2));
         (* rewrite this block's phi arms in the successors *)
         List.iter
           (fun (sb : Ir.block) ->
              sb.Ir.insts <-
                List.map
                  (fun (v, inst) ->
                     match inst with
                     | Ir.Phi arms ->
                       ( v,
                         Ir.Phi
                           (List.map
                              (fun (p, o) ->
                                 if p = b.Ir.bid then (p, subst o) else (p, o))
                              arms) )
                     | _ -> (v, inst))
                  sb.Ir.insts)
           (List.filter_map
              (fun t -> List.find_opt (fun x -> x.Ir.bid = t) f.Ir.blocks)
              (Ir.successors b.Ir.term));
         (* materialize the private copies after this block's phis *)
         if Hashtbl.length local > 0 then begin
           let copies =
             Hashtbl.fold
               (fun v v' acc ->
                  match Hashtbl.find_opt defs v with
                  | Some (inst, _) -> (v', inst) :: acc
                  | None -> acc)
               local []
           in
           let phis, rest = List.partition (fun (_, i) -> Ir.is_phi i) b.Ir.insts in
           b.Ir.insts <- phis @ copies @ rest
         end)
      f.Ir.blocks

(* ---------- block emission ---------- *)

(* Emit the frame tail for a merge successor: one instruction per slot,
   then the terminator slot (J or NOP), with no refresh in between so the
   frame layout is exact (Fig. 8(c) / Fig. 9). *)
let emit_tail st (plan : block_plan) ~(succ_label : string)
    ~(fallthrough : bool) =
  (* High-pressure "memory tail": park every register-sourced frame value
     in its stack slot first, then emit the tail as one load per slot
     (plus SPADD 0 for the frame base and single-instruction constants).
     Feasibility then depends on the frame length only. *)
  let prepared =
    if not plan.mem_tail then None
    else begin
      if not st.has_frame then
        fail "%s: memory tail without a frame" st.func.Ir.name;
      ignore (frame_base st);
      let park v =
        let off =
          match Hashtbl.find_opt st.spill_slot v with
          | Some off -> off
          | None ->
            let off = st.next_slot in
            st.next_slot <- off + 4;
            Hashtbl.replace st.spill_slot v off;
            off
        in
        if not (slot_valid st v) then begin
          ensure_positioned st v;
          emit_store_to_frame st ~value_key:v ~offset:off;
          let prev = Option.value ~default:[] (Hashtbl.find_opt st.in_slot v) in
          Hashtbl.replace st.in_slot v (st.cur_block :: prev)
        end;
        off
      in
      let slots =
        List.map
          (fun (fv, slot) ->
             match slot with
             | Slot_const c -> (fv, Slot_const c)
             | _ when fv = vk_frame_base -> (fv, Slot_fb)
             | Slot_rmov v | Slot_reload (v, _) -> (fv, Slot_reload (v, park v))
             | Slot_bigconst c ->
               let t = materialize_const st c in
               (fv, Slot_reload (t, park t))
             | Slot_sunk (v, _) ->
               (* sinking is disabled under mem_tail; defensive fallback *)
               (fv, Slot_reload (v, park v))
             | Slot_fb -> (fv, Slot_fb))
          plan.tail
      in
      (* only the frame base is read during the tail: keep it close *)
      let len = List.length slots in
      (match dist_of st vk_frame_base with
       | Some d when d + len + 1 <= st.cfgc.max_dist -> ()
       | _ ->
         let i = emit_raw st (Isa.Spadd 0) in
         define st vk_frame_base i);
      Some slots
    end
  in
  match prepared with
  | Some slots ->
    List.iteri
      (fun j (fv, slot) ->
         ignore j;
         let i =
           match slot with
           | Slot_const c -> emit_raw st (Isa.Alui (Isa.Addi, 0, c))
           | Slot_fb -> emit_raw st (Isa.Spadd 0)
           | Slot_reload (_, off) ->
             emit_raw st (Isa.Ld (dist_exn st vk_frame_base, off))
           | Slot_rmov _ | Slot_bigconst _ | Slot_sunk _ -> assert false
         in
         (match slot with
          | Slot_fb -> define st vk_frame_base i
          | Slot_reload (v, _) -> if v >= 0 then define st v i
          | _ -> ());
         define st fv i)
      slots;
    if fallthrough then ignore (emit_raw st Isa.Nop)
    else ignore (emit_raw st (Isa.J succ_label))
  | None ->
  (* values produced by a sunk slot become positioned mid-tail; their
     later RMOV slots must not be resolved in the prepared phase *)
  let sunk_defs =
    List.filter_map
      (fun (_, slot) ->
         match slot with Slot_sunk (v, _) -> Some v | _ -> None)
      plan.tail
  in
  (* pre-materialize what cannot fit in one slot instruction *)
  let prepared =
    List.map
      (fun (fv, slot) ->
         match slot with
         | Slot_bigconst c ->
           let t = materialize_const st c in
           (* pinned until its RMOV slot is out: later slot preparations
              and the pre-tail headroom batch must keep it in range *)
           hold st t;
           (fv, Slot_rmov t)
         | Slot_sunk (_, inst) ->
           prep_uses st inst;
           (match inst with
            | Ir.Frame_addr _ -> ignore (frame_base st)
            | _ -> ());
           (fv, slot)
         | Slot_rmov v when v >= 0 && not (List.mem v sunk_defs) ->
           if (not (Hashtbl.mem st.pos v)) && slot_valid st v then begin
             (* the reload itself fills the frame slot (Fig. 10(c)) *)
             ignore (frame_base st);
             (fv, Slot_reload (v, Hashtbl.find st.spill_slot v))
           end
           else begin
             ensure_positioned st v;
             (fv, slot)
           end
         | _ -> (fv, slot))
      plan.tail
  in
  ensure_headroom st (List.length prepared + 1);
  (* Frame values are redefined only once the whole tail is out: a later
     slot may still need the *current* binding of an earlier slot's frame
     value (e.g. `sum' = sum + i` after the slot producing `i' = i + 1`). *)
  let deferred = ref [] in
  List.iter
    (fun (fv, slot) ->
       let i =
         match slot with
         | Slot_rmov v -> emit_raw st (Isa.Rmov (dist_exn st v))
         | Slot_const c -> emit_raw st (Isa.Alui (Isa.Addi, 0, c))
         | Slot_bigconst _ -> assert false (* rewritten above *)
         | Slot_reload (_, off) ->
           emit_raw st (Isa.Ld (dist_exn st vk_frame_base, off))
         | Slot_fb -> emit_raw st (Isa.Spadd 0)
         | Slot_sunk (_, inst) ->
           (match inst with
            | Ir.Bin (op, Ir.Val a, Ir.Val b) ->
              emit_raw st (Isa.Alu (alu_of_binop op, dist_exn st a, dist_exn st b))
            | Ir.Bin (op, Ir.Val a, Ir.Const c) ->
              (match alui_of_binop op with
               | Some aop ->
                 emit_raw st (Isa.Alui (aop, dist_exn st a, norm_binop_imm op c))
               | None ->
                 assert (op = Ir.Sub);
                 emit_raw st (Isa.Alui (Isa.Addi, dist_exn st a, Int32.neg c)))
            | Ir.Bin (op, Ir.Const c, Ir.Val a) ->
              (match alui_of_binop op with
               | Some aop when commutative op ->
                 emit_raw st (Isa.Alui (aop, dist_exn st a, c))
               | _ -> assert false)
            | Ir.Frame_addr off ->
              emit_raw st
                (Isa.Alui (Isa.Addi, dist_exn st vk_frame_base, Int32.of_int off))
            | _ -> assert false)
       in
       deferred := (fv, i) :: !deferred;
       (match slot with
        | Slot_sunk (v, inst) ->
          (* this *is* v's (only) SSA definition; later slots may read it *)
          define st v i;
          List.iter (consume st) (Ir.inst_uses inst)
        | Slot_reload (v, _) -> define st v i
        | Slot_fb -> define st vk_frame_base i
        | Slot_rmov _ | Slot_const _ | Slot_bigconst _ -> ()))
    prepared;
  if fallthrough then ignore (emit_raw st Isa.Nop)
  else ignore (emit_raw st (Isa.J succ_label));
  List.iter
    (fun (_, slot) ->
       match slot with Slot_rmov v when v < 0 -> unhold st v | _ -> ())
    prepared;
  List.iter (fun (fv, i) -> define st fv i) !deferred

(* Distances of the merge frame at block entry: slot j of an m-slot frame
   sits m - j + 1 instructions back (the terminator slot is distance 1). *)
let install_merge_env st (frame : int list) =
  Hashtbl.reset st.pos;
  let m = List.length frame in
  List.iteri (fun j v -> Hashtbl.replace st.pos v (st.idx - (m - j + 1))) frame

let emit_ret st (retval : Ir.operand) =
  (* RE+: the return address lives in the stack frame *)
  if not st.ra_live then begin
    match st.ra_slot with
    | Some off ->
      let i = emit_load_from_frame st ~offset:off in
      define st vk_retaddr i
    | None -> fail "%s: return address neither live nor spilled" st.func.Ir.name
  end;
  (* an unpositioned slot-resident return value is loaded directly into the
     producer slot before JR *)
  let reload_ret =
    match retval with
    | Ir.Val w when (not (Hashtbl.mem st.pos w)) && slot_valid st w ->
      ignore (frame_base st);
      Some (Hashtbl.find st.spill_slot w)
    | Ir.Val w -> ensure_positioned st w; None
    | Ir.Const _ -> None
  in
  let retval =
    match retval with
    | Ir.Const c when not (fits_imm16 c) ->
      let t = materialize_const st c in
      hold st t;
      Ir.Val t
    | _ -> retval
  in
  ensure_headroom st 3;
  (match reload_ret with
   | Some off ->
     let fb_d = dist_exn st vk_frame_base in
     if st.has_frame then ignore (emit_raw st (Isa.Spadd spadd_free_marker));
     ignore (emit_raw st (Isa.Ld (fb_d + (if st.has_frame then 1 else 0), off)))
   | None ->
     if st.has_frame then ignore (emit_raw st (Isa.Spadd spadd_free_marker));
     (* retval producer immediately before JR: distance 2 after returning *)
     (match retval with
      | Ir.Const c -> ignore (emit_raw st (Isa.Alui (Isa.Addi, 0, c)))
      | Ir.Val v ->
        ignore (emit_raw st (Isa.Rmov (dist_exn st v)));
        if v < 0 then unhold st v));
  ignore (emit_raw st (Isa.Jr (dist_exn st vk_retaddr)))

let emit_block st (plans : block_plan array) (edge_env : (int, env_snapshot) Hashtbl.t)
    (bi : int) =
  let b = st.cfg.Analysis.blocks.(bi) in
  let plan = plans.(bi) in
  let n_blocks = Array.length st.cfg.Analysis.blocks in
  st.cur_block <- bi;
  push st (Assembler.Asm.Label (label_of st b.Ir.bid));
  (* install the entry environment *)
  (match Hashtbl.find_opt st.merge_frames bi with
   | Some frame -> install_merge_env st frame
   | None ->
     if bi > 0 then
       (match Hashtbl.find_opt edge_env bi with
        | Some snap -> install_snapshot st snap
        | None ->
          fail "%s: block bb%d has no incoming environment" st.func.Ir.name
            b.Ir.bid));
  (* per-block use counts: body + terminator + tail *)
  let remaining = Hashtbl.create 32 in
  let bump v =
    Hashtbl.replace remaining v
      (1 + Option.value ~default:0 (Hashtbl.find_opt remaining v))
  in
  List.iter (fun (_, inst) -> List.iter bump (Ir.inst_uses inst)) plan.body;
  List.iter bump (Ir.term_uses b.Ir.term);
  List.iter
    (fun (_, slot) ->
       match slot with
       | Slot_rmov v when v >= 0 -> bump v
       | Slot_sunk (_, inst) -> List.iter bump (Ir.inst_uses inst)
       | _ -> ())
    plan.tail;
  st.remaining <- remaining;
  st.live_out <- st.lv.Analysis.live_out.(bi);
  (* body *)
  let slot_of w =
    match Hashtbl.find_opt st.spill_slot w with
    | Some off -> off
    | None -> fail "%s: value %d has no spill slot" st.func.Ir.name w
  in
  List.iter
    (fun (v, inst) ->
       match inst with
       | Ir.Call (fname, args) ->
         let spills =
           Option.value ~default:[] (Hashtbl.find_opt plan.call_spills v)
         in
         emit_call st v fname args ~spills ~slot_of
       | _ -> emit_ir_inst st v inst ~slot_of)
    plan.body;
  (* terminator *)
  let is_next ti = ti = bi + 1 && ti < n_blocks in
  let lbl ti = label_of st st.cfg.Analysis.blocks.(ti).Ir.bid in
  match b.Ir.term with
  | Ir.Ret op -> emit_ret st op
  | Ir.Br t ->
    let ti = Analysis.block_index st.cfg t in
    if Hashtbl.mem st.merge_frames ti then
      emit_tail st plan ~succ_label:(lbl ti) ~fallthrough:(is_next ti)
    else begin
      if not (is_next ti) then begin
        ensure_headroom st 1;
        ignore (emit_raw st (Isa.J (lbl ti)))
      end;
      Hashtbl.replace edge_env ti (snapshot st)
    end
  | Ir.Cond_br (c, t1, t2) ->
    (match c with Ir.Val w -> ensure_positioned st w | Ir.Const _ -> ());
    let cv = operand_value st c in
    (* NOT consumed yet: the headroom refresh below must still count the
       condition as live, or its RMOV batch strands it out of range.  A
       constant condition resolves to a pseudo temp, which only the held
       list keeps visible to that refresh. *)
    hold st cv;
    let i1 = Analysis.block_index st.cfg t1 in
    let i2 = Analysis.block_index st.cfg t2 in
    if Hashtbl.mem st.merge_frames i1 || Hashtbl.mem st.merge_frames i2 then
      fail "%s: conditional branch into merge block (critical edge not split)"
        st.func.Ir.name;
    ensure_headroom st 2;
    (if is_next i1 then begin
       (* invert: branch to t2 when the condition is zero *)
       ignore (emit_raw st (Isa.Bez (dist_exn st cv, lbl i2)));
       Hashtbl.replace edge_env i2 (snapshot st);
       Hashtbl.replace edge_env i1 (snapshot st)
     end
     else begin
       ignore (emit_raw st (Isa.Bnz (dist_exn st cv, lbl i1)));
       Hashtbl.replace edge_env i1 (snapshot st);
       if not (is_next i2) then ignore (emit_raw st (Isa.J (lbl i2)));
       Hashtbl.replace edge_env i2 (snapshot st)
     end);
    unhold st cv;
    consume st cv

(* ---------- function emission ---------- *)

let emit_function ~(config : config) ~globals (f : Ir.func) : item list =
  localize_addresses f;
  ignore (Ssa_ir.Passes.dce f);  (* drop now-unused shared originals *)
  Ssa_ir.Passes.split_critical_edges f;
  Ssa_ir.Passes.layout_rpo f;
  Ssa_ir.Analysis.validate f;
  let cfg = Analysis.build f in
  let lv = Analysis.liveness cfg in
  let n = Array.length cfg.Analysis.blocks in
  let has_calls =
    List.exists
      (fun b ->
         List.exists
           (fun (_, i) -> match i with Ir.Call _ -> true | _ -> false)
           b.Ir.insts)
      f.Ir.blocks
  in
  let n_merges =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if List.length cfg.Analysis.preds.(i) > 1 then incr count
    done;
    !count
  in
  (* RE+ heuristic (Fig. 10(c)): relay the return address through the stack
     whenever frames exist that would otherwise carry it. *)
  let ra_spilled = config.level = Re_plus && n_merges > 0 in
  let needs_ra_slot = ra_spilled || has_calls in
  (* spill slot assignment starts after the IR-level frame area, rounded
     up to a word boundary: slots hold words and LD/ST fault on unaligned
     addresses *)
  let next_slot = ref ((f.Ir.frame_bytes + 3) land lnot 3) in
  let alloc_slot () =
    let off = !next_slot in
    next_slot := off + 4;
    off
  in
  let ra_slot = if needs_ra_slot then Some (alloc_slot ()) else None in
  let idom_arr = Analysis.idom cfg in
  let spill_slot = Hashtbl.create 16 in
  let def_of = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun (v, inst) -> Hashtbl.replace def_of v inst) b.Ir.insts)
    f.Ir.blocks;
  (match ra_slot with
   | Some off -> Hashtbl.replace spill_slot vk_retaddr off
   | None -> ());
  let st =
    { cfg; lv; cfgc = config; func = f; globals;
      items = []; idx = 0;
      pos = Hashtbl.create 64;
      tmp = -10;
      remaining = Hashtbl.create 1;
      live_out = IntSet.empty;
      ra_live = not ra_spilled;
      fb_live = false; (* set after frame size is known *)
      spill_slot;
      next_slot = 0;       (* set below once static slots are assigned *)
      has_frame = false;
      spilling = false;
      held = [];
      def_of;
      in_slot = Hashtbl.create 16;
      idom = idom_arr;
      cur_block = 0;
      ra_slot;
      frame_size = 0;  (* patched below via a second state *)
      merge_frames = Hashtbl.create 8 }
  in
  (* merge frames: pseudo values first, then IR values in id order *)
  let fb_carried = config.level = Raw in
  for i = 0 to n - 1 do
    if List.length cfg.Analysis.preds.(i) > 1 then begin
      let irs = IntSet.elements (Analysis.entry_frame lv i) in
      let pseudos =
        (if st.ra_live then [ vk_retaddr ] else [])
        @ (if fb_carried then [ vk_frame_base ] else [])
      in
      Hashtbl.replace st.merge_frames i (pseudos @ irs)
    end
  done;
  (* phase A: plan blocks, then allocate call-crossing spill slots *)
  let plans =
    Array.init n (fun i -> plan_block st cfg.Analysis.blocks.(i))
  in
  Array.iteri
    (fun i plan -> compute_call_spills st cfg.Analysis.blocks.(i) plan)
    plans;
  Array.iter
    (fun plan ->
       Hashtbl.iter
         (fun _ spills ->
            List.iter
              (fun w ->
                 let remat =
                   config.level = Re_plus
                   && (match Hashtbl.find_opt def_of w with
                       | Some (Ir.Global_addr _) | Some (Ir.Frame_addr _) -> true
                       | _ -> false)
                 in
                 if (not remat) && not (Hashtbl.mem spill_slot w) then
                   Hashtbl.replace spill_slot w (alloc_slot ()))
              spills)
         plan.call_spills)
    plans;
  let frame_size = (!next_slot + 7) land lnot 7 in
  (* A frame is emitted when there are static slots/locals, or when the
     function risks register-pressure spills: the worst frame tail needs
     roughly 2*|frame| addressable distances. *)
  let max_frame =
    Hashtbl.fold (fun _ fr acc -> max acc (List.length fr)) st.merge_frames 0
  in
  let pressure_risk = (2 * max_frame) + 8 > config.max_dist in
  let has_frame = frame_size > 0 || pressure_risk in
  let st = { st with frame_size; fb_live = fb_carried && has_frame } in
  st.has_frame <- has_frame;
  st.next_slot <- !next_slot;
  (* The frames were planned assuming the frame base is carried (RAW); if
     the function turned out frameless, drop it and re-plan the tails. *)
  let plans =
    if fb_carried && not has_frame then begin
      Hashtbl.iter
        (fun i frame ->
           Hashtbl.replace st.merge_frames i
             (List.filter (fun v -> v <> vk_frame_base) frame))
        (Hashtbl.copy st.merge_frames);
      let plans =
        Array.init n (fun i -> plan_block st cfg.Analysis.blocks.(i))
      in
      Array.iteri
        (fun i plan -> compute_call_spills st cfg.Analysis.blocks.(i) plan)
        plans;
      plans
    end
    else plans
  in
  (* phase B: emission *)
  push st (Assembler.Asm.Label (func_label f.Ir.name));
  (* entry environment: JAL at distance 1, arg_{n-1} at 2, ..., arg_0 at
     nparams+1 (Fig. 5) *)
  define st vk_retaddr (st.idx - 1);
  for p = 0 to f.Ir.nparams - 1 do
    define st p (st.idx - 1 - (f.Ir.nparams - p))
  done;
  if has_frame then begin
    let i = emit_raw st (Isa.Spadd spadd_alloc_marker) in
    define st vk_frame_base i
  end;
  if ra_spilled then begin
    (match st.ra_slot with
     | Some off -> emit_store_to_frame st ~value_key:vk_retaddr ~offset:off
     | None -> assert false);
    st.ra_live <- false;
    Hashtbl.remove st.pos vk_retaddr
  end;
  let edge_env = Hashtbl.create 16 in
  (* the entry block keeps the prologue environment *)
  Hashtbl.replace edge_env 0 (snapshot st);
  for i = 0 to n - 1 do
    emit_block st plans edge_env i
  done;
  (* the frame may have grown through pressure spills: patch the
     prologue/epilogue placeholders with the final size *)
  let final_size = (st.next_slot + 7) land lnot 7 in
  st.frame_size <- final_size;
  List.rev_map
    (fun item ->
       match item with
       | Assembler.Asm.Insn (Isa.Spadd m) when m = spadd_alloc_marker ->
         Assembler.Asm.Insn (Isa.Spadd (-final_size))
       | Assembler.Asm.Insn (Isa.Spadd m) when m = spadd_free_marker ->
         Assembler.Asm.Insn (Isa.Spadd final_size)
       | item -> item)
    st.items

(* ---------- program compilation ---------- *)

(* [layout_globals data] assigns each data symbol its absolute address,
   mirroring the .data section emission order. *)
let layout_globals (data : Ir.data_def list) : (string, int) Hashtbl.t =
  let table = Hashtbl.create 16 in
  let cursor = ref Assembler.Layout.data_base in
  List.iter
    (fun (d : Ir.data_def) ->
       Hashtbl.replace table d.Ir.sym !cursor;
       cursor := !cursor + (4 * List.length d.Ir.words) + d.Ir.extra_bytes)
    data;
  table

(* [compile ?config program] generates the complete assembly item list:
   startup stub, all functions, and the data section. *)
let compile ?(config = default_config) (p : Ir.program) : item list =
  let globals = layout_globals p.Ir.data in
  let start =
    [ Assembler.Asm.Section Assembler.Asm.Text;
      Assembler.Asm.Label "_start";
      Assembler.Asm.Insn (Isa.Jal (func_label "main"));
      Assembler.Asm.Insn Isa.Halt ]
  in
  let funcs =
    List.concat_map (fun f -> emit_function ~config ~globals f) p.Ir.funcs
  in
  let data =
    Assembler.Asm.Section Assembler.Asm.Data
    :: List.concat_map
      (fun (d : Ir.data_def) ->
         (Assembler.Asm.Label d.Ir.sym
          :: List.map (fun w -> Assembler.Asm.Word w) d.Ir.words)
         @ (if d.Ir.extra_bytes > 0 then [ Assembler.Asm.Space d.Ir.extra_bytes ]
            else []))
      p.Ir.data
  in
  start @ funcs @ data

(* [compile_to_image ?config p] assembles the generated items. *)
let compile_to_image ?config (p : Ir.program) : Assembler.Image.t =
  Assembler.Asm.Straight.assemble ~entry:"_start" (compile ?config p)

(* Static instruction-mix statistics over generated items (Fig. 15 input). *)
type stats = {
  total : int;
  rmov : int;
  nop : int;
  alu : int;
  load : int;
  store : int;
  ctrl : int;
}

let stats_of_items (items : item list) : stats =
  List.fold_left
    (fun acc it ->
       match it with
       | Assembler.Asm.Insn insn ->
         let acc = { acc with total = acc.total + 1 } in
         (match Isa.kind insn with
          | Isa.Krmov -> { acc with rmov = acc.rmov + 1 }
          | Isa.Knop -> { acc with nop = acc.nop + 1 }
          | Isa.Kload -> { acc with load = acc.load + 1 }
          | Isa.Kstore -> { acc with store = acc.store + 1 }
          | Isa.Kbranch | Isa.Kjump -> { acc with ctrl = acc.ctrl + 1 }
          | Isa.Kalu | Isa.Kmul | Isa.Kdiv | Isa.Khalt ->
            { acc with alu = acc.alu + 1 })
       | _ -> acc)
    { total = 0; rmov = 0; nop = 0; alu = 0; load = 0; store = 0; ctrl = 0 }
    items
