(** STRAIGHT code generation (the paper's Section IV).

    The central obligation: every consumer must find each source operand
    at a statically known distance (number of dynamically executed
    instructions since the producer), identical along every control-flow
    path.  The generator realizes it with:

    - {b entry frames} for merge blocks — each predecessor's tail produces
      the live values in a canonical order, padded with RMOVs or, under
      RE+, filled by the sunk producers themselves, followed by exactly
      one transfer slot ([J], or [NOP] on fall-through) — Figs. 8/9;
    - {b distance bounding} — refresh batches of RMOVs whenever a live
      value's distance approaches the configured maximum;
    - the {b calling convention} of Figs. 5/6 — argument producers
      immediately before [JAL], the return value immediately before [JR],
      caller values that live across the call spilled to the
      [SPADD]-managed frame;
    - {b RE+ redundancy elimination} (Section IV-D) — producer sinking,
      return-address and call-crossing stack relays (store-once with
      dominance-checked validity, lazy reload, reload-into-slot),
      re-materialization of address values, [SPADD 0] frame-base
      re-materialization. *)

exception Codegen_error of string

(** [Raw] is the basic algorithm of Sections IV-A..C; [Re_plus] adds the
    Section IV-D redundancy elimination. *)
type opt_level = Raw | Re_plus

type config = {
  max_dist : int;     (** maximum source distance the code may use *)
  level : opt_level;
}

val default_config : config
(** RE+ at the architectural maximum distance (1023). *)

type item = string Straight_isa.Isa.t Assembler.Asm.item

val func_label : string -> string
(** Assembly label of a function's entry (["f_<name>"]); lands in the
    linked image's symbol table — the function side of the IR<->image
    mapping the translation validator walks. *)

val block_label : string -> int -> string
(** Assembly label of basic block [bid] of function [name]
    ([".L<name>_<bid>"]); every (post-layout) IR block keeps its label
    in [Image.symbols], giving the per-block IR<->image mapping. *)

val emit_function :
  config:config -> globals:(string, int) Hashtbl.t -> Ssa_ir.Ir.func ->
  item list
(** Compile one function (mutates it: critical-edge splitting, RPO
    layout).  [globals] maps data symbols to absolute addresses.
    @raise Codegen_error if register pressure exceeds what the configured
    maximum distance can hold, or on malformed input. *)

val layout_globals : Ssa_ir.Ir.data_def list -> (string, int) Hashtbl.t
(** Assign each data symbol its absolute address, mirroring the .data
    emission order. *)

val compile : ?config:config -> Ssa_ir.Ir.program -> item list
(** Generate the complete assembly item list: the [_start] stub ([JAL
    main; HALT]), all functions, and the data section. *)

val compile_to_image : ?config:config -> Ssa_ir.Ir.program -> Assembler.Image.t

(** Static instruction-mix statistics over generated items (input to the
    Fig. 15 comparison). *)
type stats = {
  total : int;
  rmov : int;
  nop : int;
  alu : int;
  load : int;
  store : int;
  ctrl : int;
}

val stats_of_items : item list -> stats
