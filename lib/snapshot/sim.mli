(** Checkpointable simulation sessions.

    A {!session} is a live cycle-level run (either pipeline) that can be
    advanced cycle by cycle, saved to a {!File} container at any cycle
    boundary, and later restored — from the file alone.  The fixpoint
    contract, enforced by [test/test_snapshot.ml]: save at any cycle,
    kill the process, restore, run to completion — every statistic
    (cycle count, CPI stack, activity counters, fault and checker
    counts) is bit-identical to the uninterrupted run.

    Restoring re-runs the deterministic functional simulator and proves
    the regenerated trace identical to the one the checkpoint was taken
    against ({!Iss.Trace.digest}) before touching the engine image, so a
    snapshot can never silently resume against drifted code. *)

type spec = {
  target : Straight_core.Experiment.target;
  params : Ooo_common.Params.t;
  workload : Workloads.t;
  max_insns : int;
  max_dist : int;
  check : bool;          (** arm the lockstep golden-model checker *)
}

val spec :
  ?max_insns:int -> ?max_dist:int -> ?check:bool ->
  model:Ooo_common.Params.t ->
  target:Straight_core.Experiment.target ->
  Workloads.t -> spec
(** Defaults mirror [Experiment.run]: 50M instruction budget, Table-I
    max distance, checker on. *)

val compile : spec -> Assembler.Image.t
(** Compile the spec's workload for its target (shared with the
    interval sampler, which needs the image for wrong-path decode). *)

val spec_of_meta : string -> File.meta -> spec
(** Decode the spec embedded in a checkpoint's meta section; the string
    is the file path, used only for error context.
    @raise Diag.Error code [Snapshot_error] on an unknown target label
    or malformed model JSON. *)

type session

val start : spec -> session
(** Compile the workload, run the functional simulator, stand the
    engine up at cycle 0. *)

val restore : string -> session
(** Rebuild a session from a checkpoint file alone: the embedded spec
    is recompiled and the regenerated trace is verified against the
    stored digest and functional outcome.
    @raise Diag.Error code [Snapshot_error] on any corrupt, truncated,
    version-mismatched, or workload-mismatched file. *)

val resume : spec -> string -> session
(** Like {!restore}, but additionally requires the checkpoint's
    embedded spec to match [spec] (same model, target, workload,
    budgets, checker arming) — the form used by the sweep pool, where a
    checkpoint must only ever resume its own grid point.
    @raise Diag.Error code [Snapshot_error] on mismatch. *)

val step : session -> unit
val finished : session -> bool
val cycle : session -> int

val save : session -> string -> unit
(** Atomically checkpoint the session at the current cycle boundary. *)

val finish : session -> Straight_core.Experiment.result

(** How {!run} ended. *)
type outcome =
  | Completed of Straight_core.Experiment.result
  | Stopped of { cycle : int; path : string }
      (** [stop_at] hit: a checkpoint was written and the run abandoned
          (a simulated kill — the pure-CLI half of the recovery drill) *)

val drive :
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?stop_at:int ->
  ?deadlock_snapshot:string ->
  session -> outcome
(** The checkpoint-aware stepping loop on an existing session — the body
    of {!run}, usable after {!start} or {!restore} alike:

    - [checkpoint_every]: save to [checkpoint_path] every N cycles
      (0 = never);
    - [stop_at]: once the engine reaches this cycle, checkpoint to
      [checkpoint_path] and return {!Stopped} without finishing (a
      simulated kill);
    - [deadlock_snapshot]: when the engine watchdog raises
      [Sim_deadlock], save a restorable snapshot here and re-raise with
      a [("snapshot", path)] context entry, so the wedged machine state
      can be re-entered under a debugger.

    @raise Diag.Error code [Config_error] when [checkpoint_every] or
    [stop_at] is given without [checkpoint_path]. *)

val run :
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?restore_from:string ->
  ?stop_at:int ->
  ?deadlock_snapshot:string ->
  spec -> outcome
(** The full checkpoint-aware driver loop:

    - [restore_from]: resume from this checkpoint (spec-validated via
      {!resume}) instead of starting at cycle 0;
    - [checkpoint_every]: save to [checkpoint_path] every N cycles
      (0 = never);
    - [stop_at]: once the engine reaches this cycle, checkpoint to
      [checkpoint_path] and return {!Stopped} without finishing;
    - [deadlock_snapshot]: when the engine watchdog raises
      [Sim_deadlock], save a restorable snapshot here and re-raise with
      a [("snapshot", path)] context entry, so the wedged machine state
      can be re-entered under a debugger.

    See {!drive} for the flag semantics.
    @raise Diag.Error code [Config_error] when [checkpoint_every] or
    [stop_at] is given without [checkpoint_path]. *)

val run_restored : string -> Straight_core.Experiment.result
(** [restore] + step to completion + [finish]: one-call reproduction of
    a run from its checkpoint file. *)
