(* Checkpointable simulation sessions over either pipeline.  See sim.mli
   for the fixpoint and validation contracts. *)

module Bin = Ooo_common.Bin
module Engine = Ooo_common.Engine
module Params = Ooo_common.Params
module Json = Ooo_common.Stats.Json
module Trace = Iss.Trace
module Exp = Straight_core.Experiment
module Compile = Straight_core.Compile

type spec = {
  target : Exp.target;
  params : Params.t;
  workload : Workloads.t;
  max_insns : int;
  max_dist : int;
  check : bool;
}

let spec ?(max_insns = 50_000_000) ?(max_dist = Params.straight_max_dist)
    ?(check = true) ~model ~target workload =
  { target; params = model; workload; max_insns; max_dist; check }

type session = {
  spec : spec;
  engine : Engine.t;
  run_info : Trace.run;
}

let compile (s : spec) : Assembler.Image.t =
  match s.target with
  | Exp.Riscv -> Compile.to_riscv s.workload.Workloads.source
  | Exp.Straight_raw ->
    fst
      (Compile.to_straight ~max_dist:s.max_dist
         ~level:Straight_cc.Codegen.Raw s.workload.Workloads.source)
  | Exp.Straight_re ->
    fst
      (Compile.to_straight ~max_dist:s.max_dist
         ~level:Straight_cc.Codegen.Re_plus s.workload.Workloads.source)

let start (s : spec) : session =
  let image = compile s in
  match s.target with
  | Exp.Riscv ->
    let ps =
      Ooo_riscv.Pipeline.start ~max_insns:s.max_insns ~check:s.check s.params
        image
    in
    { spec = s; engine = ps.Ooo_riscv.Pipeline.engine;
      run_info = ps.Ooo_riscv.Pipeline.run_info }
  | Exp.Straight_raw | Exp.Straight_re ->
    let ps =
      Ooo_straight.Pipeline.start ~max_insns:s.max_insns ~check:s.check
        ~max_dist:s.max_dist s.params image
    in
    { spec = s; engine = ps.Ooo_straight.Pipeline.engine;
      run_info = ps.Ooo_straight.Pipeline.run_info }

let step s = Engine.step s.engine
let finished s = Engine.finished s.engine
let cycle s = Engine.cycle s.engine

(* ---------- save ---------- *)

let meta_of (s : session) : File.meta =
  { File.kind = File.Engine_image;
    target = Exp.target_label s.spec.target;
    params_json = Json.to_string ~indent:false (Params.to_json s.spec.params);
    workload_name = s.spec.workload.Workloads.name;
    workload_source = s.spec.workload.Workloads.source;
    workload_iterations = s.spec.workload.Workloads.iterations;
    max_insns = s.spec.max_insns;
    max_dist = s.spec.max_dist;
    check = s.spec.check;
    cycle = Engine.cycle s.engine;
    committed = Engine.committed_count s.engine;
    trace_digest = Trace.digest s.run_info.Trace.trace;
    output = s.run_info.Trace.output;
    retired = s.run_info.Trace.retired;
    dist_histogram = s.run_info.Trace.dist_histogram }

let save (s : session) path =
  let b = Buffer.create 65536 in
  Engine.save b s.engine;
  File.save path (meta_of s) ~payload:(Buffer.contents b)

(* ---------- restore ---------- *)

let reject path fmt =
  Printf.ksprintf
    (fun reason ->
       Diag.error
         ~context:[ ("snapshot", path); ("reason", reason) ]
         Diag.Snapshot_error "cannot restore checkpoint %s: %s" path reason)
    fmt

let target_of_label path = function
  | "STRAIGHT(RAW)" -> Exp.Straight_raw
  | "STRAIGHT(RE+)" -> Exp.Straight_re
  | "SS" -> Exp.Riscv
  | l -> reject path "unknown target label %S" l

let spec_of_meta path (m : File.meta) : spec =
  let params =
    try Params.of_json (Json.of_string m.File.params_json) with
    | Params.Json_error msg -> reject path "embedded model: %s" msg
    | Json.Parse_error msg -> reject path "embedded model JSON: %s" msg
  in
  { target = target_of_label path m.File.target;
    params;
    workload =
      { Workloads.name = m.File.workload_name;
        source = m.File.workload_source;
        iterations = m.File.workload_iterations };
    max_insns = m.File.max_insns;
    max_dist = m.File.max_dist;
    check = m.File.check }

let restore_meta path (m : File.meta) (r : Bin.reader) : session =
  (match m.File.kind with
   | File.Engine_image -> ()
   | File.Interval _ ->
     reject path
       "this is a sampling-interval checkpoint, not an engine image \
        (use straightsim -sample to consume it)");
  let s = spec_of_meta path m in
  let image = compile s in
  let session =
    try
      match s.target with
      | Exp.Riscv ->
        let ps =
          Ooo_riscv.Pipeline.resume ~max_insns:s.max_insns ~check:s.check
            s.params image r
        in
        { spec = s; engine = ps.Ooo_riscv.Pipeline.engine;
          run_info = ps.Ooo_riscv.Pipeline.run_info }
      | Exp.Straight_raw | Exp.Straight_re ->
        let ps =
          Ooo_straight.Pipeline.resume ~max_insns:s.max_insns ~check:s.check
            ~max_dist:s.max_dist s.params image r
        in
        { spec = s; engine = ps.Ooo_straight.Pipeline.engine;
          run_info = ps.Ooo_straight.Pipeline.run_info }
    with Bin.Corrupt msg -> reject path "engine image: %s" msg
  in
  (try Bin.expect_end r
   with Bin.Corrupt msg -> reject path "engine image: %s" msg);
  (* prove the regenerated functional run is the one the checkpoint was
     taken against, not merely shaped like it *)
  let digest = Trace.digest session.run_info.Trace.trace in
  if digest <> m.File.trace_digest then
    reject path
      "regenerated trace digest %s differs from checkpoint digest %s \
       (compiler or ISS drift since the checkpoint was taken)"
      digest m.File.trace_digest;
  if session.run_info.Trace.output <> m.File.output then
    reject path "regenerated program output differs from the checkpoint";
  if session.run_info.Trace.retired <> m.File.retired then
    reject path "regenerated run retired %d instructions, checkpoint ran %d"
      session.run_info.Trace.retired m.File.retired;
  if Engine.cycle session.engine <> m.File.cycle then
    reject path "engine image is at cycle %d, meta records %d"
      (Engine.cycle session.engine) m.File.cycle;
  session

let restore path : session =
  let m, r = File.load path in
  restore_meta path m r

let resume (want : spec) path : session =
  let m, r = File.load path in
  let got = spec_of_meta path m in
  if got.target <> want.target then
    reject path "checkpoint targets %s, caller wants %s"
      (Exp.target_label got.target) (Exp.target_label want.target);
  if not (Params.equal got.params want.params) then
    reject path "checkpoint model %S (digest %s) differs from caller's %S \
                 (digest %s)"
      got.params.Params.name (Params.digest got.params)
      want.params.Params.name (Params.digest want.params);
  if got.workload.Workloads.name <> want.workload.Workloads.name
     || got.workload.Workloads.source <> want.workload.Workloads.source
     || got.workload.Workloads.iterations <> want.workload.Workloads.iterations
  then
    reject path "checkpoint workload %S differs from caller's %S"
      got.workload.Workloads.name want.workload.Workloads.name;
  if got.max_insns <> want.max_insns || got.max_dist <> want.max_dist then
    reject path "checkpoint budgets (max_insns %d, max_dist %d) differ from \
                 caller's (%d, %d)"
      got.max_insns got.max_dist want.max_insns want.max_dist;
  if got.check <> want.check then
    reject path "checkpoint %s the lockstep checker, caller %s it"
      (if got.check then "arms" else "omits")
      (if want.check then "arms" else "omits");
  restore_meta path m r

(* ---------- finish ---------- *)

let finish (s : session) : Exp.result =
  let stats = Engine.finish s.engine in
  { Exp.workload = s.spec.workload.Workloads.name;
    model = s.spec.params.Params.name;
    target = s.spec.target;
    cycles = stats.Engine.cycles;
    committed = stats.Engine.committed;
    ipc = stats.Engine.ipc;
    output = s.run_info.Trace.output;
    stats;
    dist_histogram =
      (match s.spec.target with
       | Exp.Riscv -> [||]
       | _ -> s.run_info.Trace.dist_histogram) }

(* ---------- driver loop ---------- *)

type outcome =
  | Completed of Exp.result
  | Stopped of { cycle : int; path : string }

let drive ?(checkpoint_every = 0) ?checkpoint_path ?stop_at
    ?deadlock_snapshot (s : session) : outcome =
  (match checkpoint_path, checkpoint_every, stop_at with
   | None, n, _ when n > 0 ->
     Diag.error Diag.Config_error
       "checkpoint interval given without a checkpoint path"
   | None, _, Some _ ->
     Diag.error Diag.Config_error
       "a stop cycle was given without a checkpoint path"
   | _ -> ());
  let step_guarded () =
    match deadlock_snapshot with
    | None -> step s
    | Some path ->
      (try step s
       with Diag.Error d when d.Diag.code = Diag.Sim_deadlock ->
         (* the watchdog raises at the cycle boundary, so the wedged
            machine is consistent and restorable *)
         save s path;
         raise
           (Diag.Error
              { d with Diag.context = d.Diag.context @ [ ("snapshot", path) ] }))
  in
  let stopped = ref None in
  while !stopped = None && not (finished s) do
    (match stop_at with
     | Some n when cycle s >= n ->
       let path = Option.get checkpoint_path in
       save s path;
       stopped := Some path
     | _ ->
       step_guarded ();
       if checkpoint_every > 0 && not (finished s)
          && cycle s mod checkpoint_every = 0
       then save s (Option.get checkpoint_path))
  done;
  match !stopped with
  | Some path -> Stopped { cycle = cycle s; path }
  | None -> Completed (finish s)

let run ?checkpoint_every ?checkpoint_path ?restore_from ?stop_at
    ?deadlock_snapshot (sp : spec) : outcome =
  let s =
    match restore_from with
    | Some path -> resume sp path
    | None -> start sp
  in
  drive ?checkpoint_every ?checkpoint_path ?stop_at ?deadlock_snapshot s

let run_restored path : Exp.result =
  let s = restore path in
  while not (finished s) do step s done;
  finish s
