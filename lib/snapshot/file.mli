(** The on-disk checkpoint container.

    Layout (all multi-byte header fields little-endian):

    {v
    offset  size  field
    0       8     magic "STR8SNAP"
    8       4     container version
    12      8     payload length
    20      4     CRC-32 of the payload
    24      n     payload: Bin-encoded meta, then the raw engine image
    v}

    The meta section embeds the full workload source and model
    configuration, so a snapshot file alone reproduces its run: restore
    recompiles the workload, re-runs the functional simulator (which is
    deterministic), and proves the regenerated trace identical via
    {!meta.trace_digest} before handing the engine image over.

    Writes are atomic (temp file + [rename] in the destination
    directory), so a crash mid-checkpoint can never leave a torn file
    where a reader looks.  Every load failure — missing file, bad magic,
    unsupported version, short payload, CRC mismatch, malformed meta —
    raises {!Diag.Error} with code [Snapshot_error] (exit code 9) and a
    context naming the file and the reason. *)

val magic : string

val version : int
(** Container version 2: v2 added {!meta.kind} (engine image vs.
    sampling-interval checkpoint); v1 files are rejected. *)

(** What the payload after the meta section holds. *)
type kind =
  | Engine_image
      (** a full engine image ({!Ooo_common.Engine.save}) — the
          crash-recovery checkpoints of {!Sim} *)
  | Interval of { index : int; start : int; len : int; warmup : int }
      (** a sampling-interval checkpoint ([lib/sample]): warmed
          microarchitectural state at retirement [start - warmup], then
          the region's uop sub-trace.  [start]/[len] are in retired
          instructions of the measured interval proper; [index] is the
          interval's ordinal in the sampling plan. *)

type meta = {
  kind : kind;
  target : string;              (** [Experiment.target_label] *)
  params_json : string;         (** compact [Params.to_json] rendering *)
  workload_name : string;
  workload_source : string;     (** full MiniC source *)
  workload_iterations : int;
  max_insns : int;
  max_dist : int;
  check : bool;                 (** lockstep checker armed *)
  cycle : int;                  (** engine cycle at the save point *)
  committed : int;
  trace_digest : string;        (** {!Iss.Trace.digest} of the uop trace *)
  output : string;              (** ISS console output (full run) *)
  retired : int;                (** ISS retired count (full run) *)
  dist_histogram : int array;
}

val save : string -> meta -> payload:string -> unit
(** [save path meta ~payload] atomically writes the container; the
    payload's shape is named by [meta.kind].
    @raise Sys_error when the destination is not writable. *)

val load : string -> meta * Ooo_common.Bin.reader
(** Validate the container and decode the meta section.  The returned
    reader is positioned at the kind-specific payload; the caller
    consumes it (and should [expect_end] it).
    @raise Diag.Error code [Snapshot_error] on any invalid container. *)
