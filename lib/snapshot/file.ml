(* The on-disk checkpoint container: magic, version, length, CRC-32,
   then a Bin-encoded meta section followed by the raw engine image.
   See file.mli for the layout and the atomicity/rejection contract. *)

module Bin = Ooo_common.Bin

let magic = "STR8SNAP"

(* v2 added the [kind] discriminator (engine image vs. sampling-interval
   checkpoint); v1 files are rejected with a version message. *)
let version = 2
let header_len = 24

(* What the payload after the meta section holds. *)
type kind =
  | Engine_image
  | Interval of { index : int; start : int; len : int; warmup : int }

type meta = {
  kind : kind;
  target : string;
  params_json : string;
  workload_name : string;
  workload_source : string;
  workload_iterations : int;
  max_insns : int;
  max_dist : int;
  check : bool;
  cycle : int;
  committed : int;
  trace_digest : string;
  output : string;
  retired : int;
  dist_histogram : int array;
}

let w_meta b (m : meta) =
  (match m.kind with
   | Engine_image -> Bin.w_int b 0
   | Interval { index; start; len; warmup } ->
     Bin.w_int b 1;
     Bin.w_int b index;
     Bin.w_int b start;
     Bin.w_int b len;
     Bin.w_int b warmup);
  Bin.w_string b m.target;
  Bin.w_string b m.params_json;
  Bin.w_string b m.workload_name;
  Bin.w_string b m.workload_source;
  Bin.w_int b m.workload_iterations;
  Bin.w_int b m.max_insns;
  Bin.w_int b m.max_dist;
  Bin.w_bool b m.check;
  Bin.w_int b m.cycle;
  Bin.w_int b m.committed;
  Bin.w_string b m.trace_digest;
  Bin.w_string b m.output;
  Bin.w_int b m.retired;
  Bin.w_int_array b m.dist_histogram

let r_meta r : meta =
  let kind =
    match Bin.r_int r with
    | 0 -> Engine_image
    | 1 ->
      let index = Bin.r_int r in
      let start = Bin.r_int r in
      let len = Bin.r_int r in
      let warmup = Bin.r_int r in
      Interval { index; start; len; warmup }
    | n -> raise (Bin.Corrupt (Printf.sprintf "bad snapshot kind %d" n))
  in
  let target = Bin.r_string r in
  let params_json = Bin.r_string r in
  let workload_name = Bin.r_string r in
  let workload_source = Bin.r_string r in
  let workload_iterations = Bin.r_int r in
  let max_insns = Bin.r_int r in
  let max_dist = Bin.r_int r in
  let check = Bin.r_bool r in
  let cycle = Bin.r_int r in
  let committed = Bin.r_int r in
  let trace_digest = Bin.r_string r in
  let output = Bin.r_string r in
  let retired = Bin.r_int r in
  let dist_histogram = Bin.r_int_array r in
  { kind; target; params_json; workload_name; workload_source;
    workload_iterations; max_insns; max_dist; check; cycle; committed;
    trace_digest; output; retired; dist_histogram }

(* little-endian fixed-width header fields *)
let put_le b n width =
  for i = 0 to width - 1 do
    Buffer.add_char b (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let get_le s off width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let reject path fmt =
  Printf.ksprintf
    (fun reason ->
       Diag.error
         ~context:[ ("snapshot", path); ("reason", reason) ]
         Diag.Snapshot_error "cannot restore checkpoint %s: %s" path reason)
    fmt

let save path (m : meta) ~(payload : string) =
  let body = payload in
  let payload = Buffer.create (String.length body + 4096) in
  w_meta payload m;
  Buffer.add_string payload body;
  let payload = Buffer.contents payload in
  let hdr = Buffer.create header_len in
  Buffer.add_string hdr magic;
  put_le hdr version 4;
  put_le hdr (String.length payload) 8;
  put_le hdr (Bin.crc32 payload) 4;
  (* atomic: temp file in the destination directory, then rename *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Buffer.contents hdr);
     output_string oc payload;
     close_out oc
   with e -> close_out_noerr oc; (try Sys.remove tmp with Sys_error _ -> ()); raise e);
  Sys.rename tmp path

let load path : meta * Bin.reader =
  let raw =
    match
      (try
         let ic = open_in_bin path in
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         close_in ic;
         Some s
       with Sys_error _ | End_of_file -> None)
    with
    | Some s -> s
    | None -> reject path "file missing or unreadable"
  in
  if String.length raw < header_len then
    reject path "truncated header (%d bytes)" (String.length raw);
  if String.sub raw 0 8 <> magic then reject path "bad magic";
  let v = get_le raw 8 4 in
  if v <> version then
    reject path "container version %d, this build reads %d" v version;
  let len = get_le raw 12 8 in
  let crc = get_le raw 20 4 in
  if String.length raw - header_len <> len then
    reject path "payload is %d bytes, header promises %d"
      (String.length raw - header_len) len;
  let payload = String.sub raw header_len len in
  let actual = Bin.crc32 payload in
  if actual <> crc then
    reject path "CRC mismatch (stored %08x, computed %08x)" crc actual;
  let r = Bin.reader payload in
  let m = try r_meta r with Bin.Corrupt msg -> reject path "meta: %s" msg in
  (m, r)
