(* RV32IM code generation: the superscalar baseline's compiler back end
   (the paper uses clang/LLVM with the lowRISC RISC-V back end; Section V-A).

   Pipeline: critical-edge splitting -> phi elimination (parallel copies at
   predecessor tails) -> instruction selection to virtual-register RV32IM
   with compare-and-branch fusion -> liveness-based linear-scan register
   allocation (callee-saved registers for call-crossing values, spilling
   with reserved scratch registers) -> prologue/epilogue insertion. *)

module Isa = Riscv_isa.Isa
module Ir = Ssa_ir.Ir
module Analysis = Ssa_ir.Analysis
module IntSet = Analysis.IntSet

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

type item = string Isa.t Assembler.Asm.item

(* Virtual registers start above the architectural file. *)
let first_vreg = 32
let is_vreg r = r >= first_vreg

(* Register pools (ABI): t0-t4 caller-saved, s0-s11 callee-saved.
   t5/t6 (x30/x31) are reserved as spill scratch; a0-a7 are reserved for
   argument/return shuffling; ra/sp/gp/tp are never allocated. *)
let caller_pool = [ 5; 6; 7; 28; 29 ]
let callee_pool = [ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]
let scratch1 = 30
let scratch2 = 31

let fits_imm12 (v : int32) = v >= -2048l && v <= 2047l

(* ---------- virtual-register code ---------- *)

type vblock = {
  label : string;
  mutable code : string Isa.t list;   (* body, no terminator *)
  mutable term : string Isa.t list;   (* 0-2 control transfer instructions *)
  mutable succ_labels : string list;  (* for liveness *)
}

type vfunc = {
  fname : string;
  mutable vblocks : vblock list;
  mutable next_vreg : int;
  frame_bytes : int;                  (* IR-level locals *)
  ret_label : string;
}

let fresh_vreg vf =
  let v = vf.next_vreg in
  vf.next_vreg <- v + 1;
  v

(* ---------- instruction selection ---------- *)

type fctx = {
  vf : vfunc;
  globals : (string, int) Hashtbl.t;
  value_reg : (Ir.value, int) Hashtbl.t;   (* IR value -> vreg *)
  mutable cur : vblock;
}

let vreg_of ctx (v : Ir.value) : int =
  match Hashtbl.find_opt ctx.value_reg v with
  | Some r -> r
  | None ->
    let r = fresh_vreg ctx.vf in
    Hashtbl.replace ctx.value_reg v r;
    r

let emitv ctx insn = ctx.cur.code <- insn :: ctx.cur.code

(* Load a 32-bit constant into [rd]. *)
let emit_li ctx rd (c : int32) =
  if fits_imm12 c then emitv ctx (Isa.Alui (Isa.Addi, rd, 0, Int32.to_int c))
  else begin
    let lo = Int32.of_int ((Int32.to_int c + 2048) land 0xFFF - 2048) in
    let hi = Int32.shift_right_logical (Int32.sub c lo) 12 in
    let hi = Int32.logand hi 0xFFFFFl in
    emitv ctx (Isa.Lui (rd, hi));
    if lo <> 0l then emitv ctx (Isa.Alui (Isa.Addi, rd, rd, Int32.to_int lo))
  end

(* Operand into a register (materializing constants into a fresh vreg). *)
let reg_of_operand ctx (op : Ir.operand) : int =
  match op with
  | Ir.Val v -> vreg_of ctx v
  | Ir.Const 0l -> 0
  | Ir.Const c ->
    let r = fresh_vreg ctx.vf in
    emit_li ctx r c;
    r

let alui_of_binop : Ir.binop -> Isa.alui_op option = function
  | Ir.Add -> Some Isa.Addi
  | Ir.And -> Some Isa.Andi
  | Ir.Or -> Some Isa.Ori
  | Ir.Xor -> Some Isa.Xori
  | Ir.Shl -> Some Isa.Slli
  | Ir.Lshr -> Some Isa.Srli
  | Ir.Ashr -> Some Isa.Srai
  | _ -> None

let alu_of_binop : Ir.binop -> Isa.alu_op = function
  | Ir.Add -> Isa.Add | Ir.Sub -> Isa.Sub | Ir.Mul -> Isa.Mul
  | Ir.Div -> Isa.Div | Ir.Divu -> Isa.Divu | Ir.Rem -> Isa.Rem
  | Ir.Remu -> Isa.Remu | Ir.And -> Isa.And | Ir.Or -> Isa.Or
  | Ir.Xor -> Isa.Xor | Ir.Shl -> Isa.Sll | Ir.Lshr -> Isa.Srl
  | Ir.Ashr -> Isa.Sra

let commutative : Ir.binop -> bool = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

(* Shift-by-constant is defined modulo 32 (eval_alu reads only the low
   five bits); the encoder rejects anything outside [0,31], so reduce the
   immediate before selecting the register-immediate form. *)
let norm_binop_imm (op : Ir.binop) (c : int32) : int32 =
  match op with
  | Ir.Shl | Ir.Lshr | Ir.Ashr -> Int32.logand c 31l
  | _ -> c

let sel_binop ctx rd op (a : Ir.operand) (b : Ir.operand) =
  let imm_ok c =
    match alui_of_binop op with
    | Some _ -> fits_imm12 (norm_binop_imm op c)
    | None -> op = Ir.Sub && fits_imm12 (Int32.neg c)
  in
  match a, b with
  | Ir.Val va, Ir.Const c when imm_ok c ->
    (match alui_of_binop op with
     | Some aop ->
       emitv ctx
         (Isa.Alui (aop, rd, vreg_of ctx va, Int32.to_int (norm_binop_imm op c)))
     | None ->
       emitv ctx
         (Isa.Alui (Isa.Addi, rd, vreg_of ctx va, -Int32.to_int c)))
  | Ir.Const c, Ir.Val vb when commutative op && imm_ok c ->
    (match alui_of_binop op with
     | Some aop -> emitv ctx (Isa.Alui (aop, rd, vreg_of ctx vb, Int32.to_int c))
     | None -> assert false)
  | _ ->
    let ra = reg_of_operand ctx a in
    let rb = reg_of_operand ctx b in
    emitv ctx (Isa.Alu (alu_of_binop op, rd, ra, rb))

(* Comparison producing 0/1 in [rd] (used when the result is not fused into
   a branch). *)
let sel_cmp ctx rd op (a : Ir.operand) (b : Ir.operand) =
  let ra () = reg_of_operand ctx a in
  let rb () = reg_of_operand ctx b in
  match op with
  | Ir.Lt ->
    (match b with
     | Ir.Const c when fits_imm12 c ->
       emitv ctx (Isa.Alui (Isa.Slti, rd, ra (), Int32.to_int c))
     | _ ->
       let x = ra () in
       emitv ctx (Isa.Alu (Isa.Slt, rd, x, rb ())))
  | Ir.Ltu ->
    (match b with
     | Ir.Const c when fits_imm12 c ->
       emitv ctx (Isa.Alui (Isa.Sltiu, rd, ra (), Int32.to_int c))
     | _ ->
       let x = ra () in
       emitv ctx (Isa.Alu (Isa.Sltu, rd, x, rb ())))
  | Ir.Gt ->
    let x = ra () in
    let y = rb () in
    emitv ctx (Isa.Alu (Isa.Slt, rd, y, x))
  | Ir.Ge ->
    let x = ra () in
    let y = rb () in
    emitv ctx (Isa.Alu (Isa.Slt, rd, x, y));
    emitv ctx (Isa.Alui (Isa.Xori, rd, rd, 1))
  | Ir.Geu ->
    let x = ra () in
    let y = rb () in
    emitv ctx (Isa.Alu (Isa.Sltu, rd, x, y));
    emitv ctx (Isa.Alui (Isa.Xori, rd, rd, 1))
  | Ir.Le ->
    let x = ra () in
    let y = rb () in
    emitv ctx (Isa.Alu (Isa.Slt, rd, y, x));
    emitv ctx (Isa.Alui (Isa.Xori, rd, rd, 1))
  | Ir.Eq | Ir.Ne ->
    let diff =
      match a, b with
      | x, Ir.Const 0l | Ir.Const 0l, x -> reg_of_operand ctx x
      | _ ->
        let t = fresh_vreg ctx.vf in
        let x = ra () in
        emitv ctx (Isa.Alu (Isa.Xor, t, x, rb ()));
        t
    in
    if op = Ir.Eq then emitv ctx (Isa.Alui (Isa.Sltiu, rd, diff, 1))
    else emitv ctx (Isa.Alu (Isa.Sltu, rd, 0, diff))

(* Branch condition for a fused compare-and-branch. *)
let fused_branch op (ra : int) (rb : int) ~(invert : bool) :
  Isa.branch_cond * int * int =
  let c, x, y =
    match op with
    | Ir.Eq -> (Isa.Beq, ra, rb)
    | Ir.Ne -> (Isa.Bne, ra, rb)
    | Ir.Lt -> (Isa.Blt, ra, rb)
    | Ir.Ge -> (Isa.Bge, ra, rb)
    | Ir.Ltu -> (Isa.Bltu, ra, rb)
    | Ir.Geu -> (Isa.Bgeu, ra, rb)
    | Ir.Gt -> (Isa.Blt, rb, ra)
    | Ir.Le -> (Isa.Bge, rb, ra)
  in
  if invert then
    let c' =
      match c with
      | Isa.Beq -> Isa.Bne | Isa.Bne -> Isa.Beq | Isa.Blt -> Isa.Bge
      | Isa.Bge -> Isa.Blt | Isa.Bltu -> Isa.Bgeu | Isa.Bgeu -> Isa.Bltu
    in
    (c', x, y)
  else (c, x, y)

(* ---------- instruction selection over a function ---------- *)

let block_label fname bid = Printf.sprintf ".L%s_%d" fname bid
let func_label name = "f_" ^ name
let ret_label fname = Printf.sprintf ".L%s_ret" fname

(* IR values with exactly one use whose defining Cmp sits in the same block
   as the Cond_br consuming it can fuse into a compare-and-branch. *)
let fusable_cmps (f : Ir.func) : (Ir.value, Ir.cmpop * Ir.operand * Ir.operand) Hashtbl.t =
  let use_count = Hashtbl.create 64 in
  let bump v =
    Hashtbl.replace use_count v
      (1 + Option.value ~default:0 (Hashtbl.find_opt use_count v))
  in
  List.iter
    (fun b ->
       List.iter (fun (_, i) -> List.iter bump (Ir.inst_uses i)) b.Ir.insts;
       List.iter bump (Ir.term_uses b.Ir.term))
    f.Ir.blocks;
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
       match b.Ir.term with
       | Ir.Cond_br (Ir.Val c, _, _) when Hashtbl.find_opt use_count c = Some 1 ->
         List.iter
           (fun (v, inst) ->
              match inst with
              | Ir.Cmp (op, a, x) when v = c -> Hashtbl.replace table c (op, a, x)
              | _ -> ())
           b.Ir.insts
       | _ -> ())
    f.Ir.blocks;
  table

(* Sequentialize a parallel copy (phi moves), breaking cycles with a fresh
   temporary. *)
let sequentialize_moves vf (moves : (int * [ `Reg of int | `Cst of int32 ]) list) :
  string Isa.t list =
  let out = ref [] in
  let emit i = out := i :: !out in
  let pending = ref (List.filter (fun (d, s) -> s <> `Reg d) moves) in
  let src_regs () =
    List.filter_map (fun (_, s) -> match s with `Reg r -> Some r | _ -> None)
      !pending
  in
  while !pending <> [] do
    match
      List.find_opt (fun (d, _) -> not (List.mem d (src_regs ()))) !pending
    with
    | Some ((d, s) as m) ->
      (match s with
       | `Reg r -> emit (Isa.Alui (Isa.Addi, d, r, 0))
       | `Cst c ->
         if fits_imm12 c then emit (Isa.Alui (Isa.Addi, d, 0, Int32.to_int c))
         else begin
           let lo = Int32.of_int ((Int32.to_int c + 2048) land 0xFFF - 2048) in
           let hi = Int32.logand (Int32.shift_right_logical (Int32.sub c lo) 12) 0xFFFFFl in
           emit (Isa.Lui (d, hi));
           if lo <> 0l then emit (Isa.Alui (Isa.Addi, d, d, Int32.to_int lo))
         end);
      pending := List.filter (fun m' -> m' != m) !pending
    | None ->
      (* a register cycle: move one source aside into a fresh temp *)
      (match !pending with
       | (_, `Reg r) :: _ ->
         let t = fresh_vreg vf in
         emit (Isa.Alui (Isa.Addi, t, r, 0));
         pending :=
           List.map
             (fun (d, s) -> if s = `Reg r then (d, `Reg t) else (d, s))
             !pending
       | _ -> assert false)
  done;
  List.rev !out

let max_args = 8

let sel_inst ctx fusable (v : Ir.value) (inst : Ir.inst) =
  match inst with
  | Ir.Phi _ -> ()
  | Ir.Cmp (_, _, _) when Hashtbl.mem fusable v -> ()
  | Ir.Bin (op, a, b) -> sel_binop ctx (vreg_of ctx v) op a b
  | Ir.Cmp (op, a, b) -> sel_cmp ctx (vreg_of ctx v) op a b
  | Ir.Load (addr, off) ->
    (match addr with
     | Ir.Const c ->
       let t = fresh_vreg ctx.vf in
       emit_li ctx t (Int32.add c (Int32.of_int off));
       emitv ctx (Isa.Lw (vreg_of ctx v, t, 0))
     | Ir.Val a ->
       if off >= -2048 && off <= 2047 then
         emitv ctx (Isa.Lw (vreg_of ctx v, vreg_of ctx a, off))
       else begin
         let t = fresh_vreg ctx.vf in
         emitv ctx (Isa.Alui (Isa.Addi, t, vreg_of ctx a, off));
         emitv ctx (Isa.Lw (vreg_of ctx v, t, 0))
       end)
  | Ir.Store (x, addr, off) ->
    let rx = reg_of_operand ctx x in
    (match addr with
     | Ir.Const c ->
       let t = fresh_vreg ctx.vf in
       emit_li ctx t (Int32.add c (Int32.of_int off));
       emitv ctx (Isa.Sw (rx, t, 0))
     | Ir.Val a ->
       if off >= -2048 && off <= 2047 then
         emitv ctx (Isa.Sw (rx, vreg_of ctx a, off))
       else begin
         let t = fresh_vreg ctx.vf in
         emitv ctx (Isa.Alui (Isa.Addi, t, vreg_of ctx a, off));
         emitv ctx (Isa.Sw (rx, t, 0))
       end);
    (* the IR store "returns" the stored value: alias the registers *)
    Hashtbl.replace ctx.value_reg v rx
  | Ir.Call (fname, args) ->
    if List.length args > max_args then
      fail "%s: call %s with more than %d register arguments" ctx.vf.fname
        fname max_args;
    List.iteri
      (fun i a ->
         let ai = 10 + i in
         match a with
         | Ir.Const c -> emit_li ctx ai c
         | Ir.Val w -> emitv ctx (Isa.Alui (Isa.Addi, ai, vreg_of ctx w, 0)))
      args;
    emitv ctx (Isa.Jal (1, func_label fname));
    emitv ctx (Isa.Alui (Isa.Addi, vreg_of ctx v, 10, 0))
  | Ir.Frame_addr off ->
    emitv ctx (Isa.Alui (Isa.Addi, vreg_of ctx v, 2, off))
  | Ir.Global_addr sym ->
    (match Hashtbl.find_opt ctx.globals sym with
     | Some addr -> emit_li ctx (vreg_of ctx v) (Int32.of_int addr)
     | None -> fail "%s: unknown global %s" ctx.vf.fname sym)

(* Select a whole function into virtual-register blocks. *)
let select_function ~globals (f : Ir.func) : vfunc =
  let vf =
    { fname = f.Ir.name;
      vblocks = [];
      next_vreg = first_vreg + f.Ir.nvalues;
      frame_bytes = f.Ir.frame_bytes;
      ret_label = ret_label f.Ir.name }
  in
  let fusable = fusable_cmps f in
  let blocks_by_label = Hashtbl.create 16 in
  let ctx =
    { vf; globals;
      value_reg = Hashtbl.create 64;
      cur = { label = ""; code = []; term = []; succ_labels = [] } }
  in
  (* params: IR value i <-> vreg first_vreg+i; copied from a_i on entry *)
  for p = 0 to f.Ir.nparams - 1 do
    Hashtbl.replace ctx.value_reg p (first_vreg + p)
  done;
  List.iteri
    (fun i b ->
       let vb =
         { label = block_label f.Ir.name b.Ir.bid;
           code = []; term = []; succ_labels = [] }
       in
       Hashtbl.replace blocks_by_label vb.label vb;
       vf.vblocks <- vf.vblocks @ [ vb ];
       ctx.cur <- vb;
       if i = 0 then
         for p = 0 to f.Ir.nparams - 1 do
           emitv ctx (Isa.Alui (Isa.Addi, first_vreg + p, 10 + p, 0))
         done;
       List.iter (fun (v, inst) -> sel_inst ctx fusable v inst) b.Ir.insts;
       (match b.Ir.term with
        | Ir.Ret op ->
          (match op with
           | Ir.Const c -> emit_li ctx 10 c
           | Ir.Val v -> emitv ctx (Isa.Alui (Isa.Addi, 10, vreg_of ctx v, 0)));
          vb.term <- [ Isa.Jal (0, vf.ret_label) ];
          vb.succ_labels <- []
        | Ir.Br t ->
          vb.term <- [ Isa.Jal (0, block_label f.Ir.name t) ];
          vb.succ_labels <- [ block_label f.Ir.name t ]
        | Ir.Cond_br (c, t1, t2) ->
          let l1 = block_label f.Ir.name t1 in
          let l2 = block_label f.Ir.name t2 in
          (match c with
           | Ir.Val cv when Hashtbl.mem fusable cv ->
             let op, a, x = Hashtbl.find fusable cv in
             let ra = reg_of_operand ctx a in
             let rx = reg_of_operand ctx x in
             let cond, r1, r2 = fused_branch op ra rx ~invert:false in
             vb.term <- [ Isa.Branch (cond, r1, r2, l1); Isa.Jal (0, l2) ]
           | _ ->
             let rc = reg_of_operand ctx c in
             vb.term <- [ Isa.Branch (Isa.Bne, rc, 0, l1); Isa.Jal (0, l2) ]);
          vb.succ_labels <- [ l1; l2 ]))
    f.Ir.blocks;
  (* phi elimination: parallel copies at each predecessor's tail *)
  List.iter
    (fun b ->
       let phis =
         List.filter_map
           (fun (v, inst) ->
              match inst with Ir.Phi arms -> Some (v, arms) | _ -> None)
           b.Ir.insts
       in
       if phis <> [] then begin
         (* group moves per predecessor *)
         let preds = List.map fst (snd (List.hd phis)) in
         List.iter
           (fun pred_bid ->
              let moves =
                List.map
                  (fun (v, arms) ->
                     let src =
                       match List.assoc pred_bid arms with
                       | Ir.Val u -> `Reg (vreg_of ctx u)
                       | Ir.Const c -> `Cst c
                     in
                     (vreg_of ctx v, src))
                  phis
              in
              let code = sequentialize_moves vf moves in
              let pb =
                Hashtbl.find blocks_by_label (block_label f.Ir.name pred_bid)
              in
              (* pb.code is in reverse order at this point; the moves must
                 land at the end of the block body *)
              pb.code <- List.rev_append code pb.code)
           preds
       end)
    f.Ir.blocks;
  (* blocks collected code in reverse *)
  List.iter (fun vb -> vb.code <- List.rev vb.code) vf.vblocks;
  vf

(* ---------- liveness and live intervals over virtual registers ---------- *)

let vinst_uses (i : string Isa.t) = List.filter is_vreg (Isa.sources i)
let vinst_def (i : string Isa.t) =
  match Isa.dest i with Some r when is_vreg r -> Some r | _ -> None

let is_call (i : string Isa.t) =
  match i with Isa.Jal (1, _) | Isa.Jalr (1, _, _) -> true | _ -> false

type interval = {
  vreg : int;
  mutable istart : int;
  mutable iend : int;
  mutable crosses_call : bool;
}

(* Compute per-vreg live intervals (single conservative range per vreg,
   extended over blocks where the vreg is live-in/out) plus call-crossing
   flags. *)
let live_intervals (vf : vfunc) : interval list =
  let blocks = Array.of_list vf.vblocks in
  let n = Array.length blocks in
  let by_label = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace by_label b.label i) blocks;
  (* block-level use/def *)
  let uses = Array.make n IntSet.empty in
  let defs = Array.make n IntSet.empty in
  Array.iteri
    (fun i b ->
       List.iter
         (fun insn ->
            List.iter
              (fun u ->
                 if not (IntSet.mem u defs.(i)) then uses.(i) <- IntSet.add u uses.(i))
              (vinst_uses insn);
            match vinst_def insn with
            | Some d -> defs.(i) <- IntSet.add d defs.(i)
            | None -> ())
         (b.code @ b.term))
    blocks;
  let live_in = Array.make n IntSet.empty in
  let live_out = Array.make n IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc l ->
             match Hashtbl.find_opt by_label l with
             | Some s -> IntSet.union acc live_in.(s)
             | None -> acc)
          IntSet.empty blocks.(i).succ_labels
      in
      let inn = IntSet.union uses.(i) (IntSet.diff out defs.(i)) in
      if not (IntSet.equal out live_out.(i)) || not (IntSet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (* positions *)
  let intervals : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch v p =
    match Hashtbl.find_opt intervals v with
    | Some iv ->
      if p < iv.istart then iv.istart <- p;
      if p > iv.iend then iv.iend <- p
    | None ->
      Hashtbl.replace intervals v { vreg = v; istart = p; iend = p; crosses_call = false }
  in
  let pos = ref 0 in
  let call_positions = ref [] in
  Array.iteri
    (fun i b ->
       let bstart = !pos in
       List.iter
         (fun insn ->
            List.iter (fun u -> touch u !pos) (vinst_uses insn);
            (match vinst_def insn with Some d -> touch d !pos | None -> ());
            if is_call insn then call_positions := !pos :: !call_positions;
            incr pos)
         (b.code @ b.term);
       let bend = !pos - 1 in
       IntSet.iter (fun v -> touch v bstart) live_in.(i);
       IntSet.iter (fun v -> touch v (max bstart bend)) live_out.(i))
    blocks;
  let calls = List.sort compare !call_positions in
  let result = Hashtbl.fold (fun _ iv acc -> iv :: acc) intervals [] in
  List.iter
    (fun iv ->
       iv.crosses_call <-
         List.exists (fun c -> iv.istart < c && c < iv.iend) calls)
    result;
  List.sort (fun a b -> compare a.istart b.istart) result

(* ---------- linear-scan allocation ---------- *)

type location = Reg of int | Slot of int   (* stack slot index *)

type alloc_result = {
  location : (int, location) Hashtbl.t;    (* vreg -> location *)
  n_slots : int;
  used_callee : int list;                  (* callee-saved registers used *)
}

let linear_scan (intervals : interval list) : alloc_result =
  let location = Hashtbl.create 64 in
  let free_caller = ref caller_pool in
  let free_callee = ref callee_pool in
  let active : interval list ref = ref [] in (* sorted by iend *)
  let used_callee = ref [] in
  let n_slots = ref 0 in
  let release r =
    if List.mem r caller_pool then free_caller := r :: !free_caller
    else free_callee := r :: !free_callee
  in
  let alloc_slot () =
    let s = !n_slots in
    incr n_slots;
    s
  in
  let expire current_start =
    let expired, still =
      List.partition (fun iv -> iv.iend < current_start) !active
    in
    List.iter
      (fun iv ->
         match Hashtbl.find_opt location iv.vreg with
         | Some (Reg r) -> release r
         | _ -> ())
      expired;
    active := still
  in
  List.iter
    (fun iv ->
       expire iv.istart;
       let take_reg r =
         if List.mem r callee_pool && not (List.mem r !used_callee) then
           used_callee := r :: !used_callee;
         Hashtbl.replace location iv.vreg (Reg r);
         active :=
           List.sort (fun a b -> compare a.iend b.iend) (iv :: !active)
       in
       let try_pools pools =
         let rec go = function
           | [] -> None
           | pool_ref :: rest ->
             (match !pool_ref with
              | r :: more -> pool_ref := more; Some r
              | [] -> go rest)
         in
         go pools
       in
       let pools =
         if iv.crosses_call then [ free_callee ] else [ free_caller; free_callee ]
       in
       match try_pools pools with
       | Some r -> take_reg r
       | None ->
         (* try to evict an active interval ending later whose register we
            are allowed to use *)
         let allowed r =
           if iv.crosses_call then List.mem r callee_pool
           else List.mem r caller_pool || List.mem r callee_pool
         in
         let candidate =
           List.fold_left
             (fun best other ->
                match Hashtbl.find_opt location other.vreg with
                | Some (Reg r) when allowed r && other.iend > iv.iend ->
                  (match best with
                   | Some b when b.iend >= other.iend -> best
                   | _ -> Some other)
                | _ -> best)
             None !active
         in
         (match candidate with
          | Some victim ->
            let r =
              match Hashtbl.find location victim.vreg with
              | Reg r -> r
              | Slot _ -> assert false
            in
            Hashtbl.replace location victim.vreg (Slot (alloc_slot ()));
            active := List.filter (fun o -> o != victim) !active;
            take_reg r
          | None -> Hashtbl.replace location iv.vreg (Slot (alloc_slot ()))))
    intervals;
  { location; n_slots = !n_slots; used_callee = List.sort compare !used_callee }

(* ---------- rewriting and final emission ---------- *)

(* Frame layout (bytes from sp):
     0 .. frame_bytes-1                IR locals (Frame_addr)
     frame_bytes .. +4*n_slots         spill slots
     then saved callee registers, then ra.  16-byte aligned. *)
let emit_function ~globals (f : Ir.func) : item list =
  Ssa_ir.Passes.split_critical_edges f;
  Ssa_ir.Passes.layout_rpo f;
  Ssa_ir.Analysis.validate f;
  let vf = select_function ~globals f in
  let intervals = live_intervals vf in
  let alloc = linear_scan intervals in
  let has_calls =
    List.exists
      (fun b -> List.exists is_call (b.code @ b.term))
      vf.vblocks
  in
  let slot_off s = vf.frame_bytes + (4 * s) in
  let save_base = vf.frame_bytes + (4 * alloc.n_slots) in
  let n_saves = List.length alloc.used_callee + (if has_calls then 1 else 0) in
  let frame = (save_base + (4 * n_saves) + 15) land lnot 15 in
  let items = ref [] in
  let out it = items := it :: !items in
  let outi insn = out (Assembler.Asm.Insn insn) in
  (* map one instruction's registers, inserting spill loads/stores *)
  let loc r : location =
    if is_vreg r then
      match Hashtbl.find_opt alloc.location r with
      | Some l -> l
      | None -> Reg scratch1 (* defined but never used: any register is fine *)
    else Reg r
  in
  let rewrite insn =
    let srcs = Isa.sources insn in
    (* assign scratch registers to spilled sources *)
    let smap = Hashtbl.create 4 in
    let scratches = ref [ scratch1; scratch2 ] in
    List.iter
      (fun r ->
         match loc r with
         | Slot s when not (Hashtbl.mem smap r) ->
           (match !scratches with
            | sc :: rest ->
              scratches := rest;
              Hashtbl.replace smap r sc;
              outi (Isa.Lw (sc, 2, slot_off s))
            | [] -> fail "%s: out of spill scratch registers" vf.fname)
         | _ -> ())
      srcs;
    let map_src r =
      match loc r with
      | Reg pr -> pr
      | Slot _ -> Hashtbl.find smap r
    in
    let dest_slot = ref None in
    let map_dst r =
      match loc r with
      | Reg pr -> pr
      | Slot s -> dest_slot := Some s; scratch1
    in
    let insn' =
      match insn with
      | Isa.Lui (rd, i) -> Isa.Lui (map_dst rd, i)
      | Isa.Auipc (rd, i) -> Isa.Auipc (map_dst rd, i)
      | Isa.Jal (rd, l) -> Isa.Jal ((if is_vreg rd then map_dst rd else rd), l)
      | Isa.Jalr (rd, rs, i) -> Isa.Jalr (map_dst rd, map_src rs, i)
      | Isa.Branch (c, a, b, l) -> Isa.Branch (c, map_src a, map_src b, l)
      | Isa.Lw (rd, rs, i) -> Isa.Lw (map_dst rd, map_src rs, i)
      | Isa.Sw (rs2, rs1, i) -> Isa.Sw (map_src rs2, map_src rs1, i)
      | Isa.Alui (op, rd, rs, i) -> Isa.Alui (op, map_dst rd, map_src rs, i)
      | Isa.Alu (op, rd, rs1, rs2) ->
        Isa.Alu (op, map_dst rd, map_src rs1, map_src rs2)
      | Isa.Ebreak -> Isa.Ebreak
    in
    (* drop no-op moves *)
    (match insn' with
     | Isa.Alui (Isa.Addi, rd, rs, 0) when rd = rs && !dest_slot = None -> ()
     | _ -> outi insn');
    match !dest_slot with
    | Some s -> outi (Isa.Sw (scratch1, 2, slot_off s))
    | None -> ()
  in
  out (Assembler.Asm.Label (func_label vf.fname));
  (* prologue *)
  if frame > 0 then outi (Isa.Alui (Isa.Addi, 2, 2, -frame));
  List.iteri
    (fun i r -> outi (Isa.Sw (r, 2, save_base + (4 * i))))
    alloc.used_callee;
  if has_calls then
    outi (Isa.Sw (1, 2, save_base + (4 * List.length alloc.used_callee)));
  (* body *)
  let blocks = Array.of_list vf.vblocks in
  Array.iteri
    (fun i b ->
       out (Assembler.Asm.Label b.label);
       List.iter rewrite b.code;
       (* peephole: drop a trailing unconditional jump to the next label *)
       let term =
         match List.rev b.term, (if i + 1 < Array.length blocks then Some blocks.(i + 1).label else None) with
         | Isa.Jal (0, l) :: rest, Some next when l = next -> List.rev rest
         | _ -> b.term
       in
       List.iter rewrite term)
    blocks;
  (* epilogue *)
  out (Assembler.Asm.Label vf.ret_label);
  if has_calls then
    outi (Isa.Lw (1, 2, save_base + (4 * List.length alloc.used_callee)));
  List.iteri
    (fun i r -> outi (Isa.Lw (r, 2, save_base + (4 * i))))
    alloc.used_callee;
  if frame > 0 then outi (Isa.Alui (Isa.Addi, 2, 2, frame));
  outi (Isa.Jalr (0, 1, 0));
  List.rev !items

(* ---------- program compilation ---------- *)

let layout_globals (data : Ir.data_def list) : (string, int) Hashtbl.t =
  let table = Hashtbl.create 16 in
  let cursor = ref Assembler.Layout.data_base in
  List.iter
    (fun (d : Ir.data_def) ->
       Hashtbl.replace table d.Ir.sym !cursor;
       cursor := !cursor + (4 * List.length d.Ir.words) + d.Ir.extra_bytes)
    data;
  table

(* [compile p] generates the complete RV32IM assembly item list. *)
let compile (p : Ir.program) : item list =
  let globals = layout_globals p.Ir.data in
  let start =
    [ Assembler.Asm.Section Assembler.Asm.Text;
      Assembler.Asm.Label "_start";
      Assembler.Asm.Insn (Isa.Jal (1, "f_main"));
      Assembler.Asm.Insn Isa.Ebreak ]
  in
  let funcs = List.concat_map (fun f -> emit_function ~globals f) p.Ir.funcs in
  let data =
    Assembler.Asm.Section Assembler.Asm.Data
    :: List.concat_map
      (fun (d : Ir.data_def) ->
         (Assembler.Asm.Label d.Ir.sym
          :: List.map (fun w -> Assembler.Asm.Word w) d.Ir.words)
         @ (if d.Ir.extra_bytes > 0 then [ Assembler.Asm.Space d.Ir.extra_bytes ]
            else []))
      p.Ir.data
  in
  start @ funcs @ data

let compile_to_image (p : Ir.program) : Assembler.Image.t =
  Assembler.Asm.Riscv.assemble ~entry:"_start" (compile p)
