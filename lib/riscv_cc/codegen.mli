(** RV32IM code generation — the superscalar baseline's compiler back end
    (the paper's clang/LLVM + lowRISC stand-in, Section V-A).

    Pipeline: critical-edge splitting -> phi elimination (cycle-safe
    parallel copies at predecessor tails) -> instruction selection to
    virtual-register RV32IM with compare-and-branch fusion ->
    liveness-based linear-scan register allocation (callee-saved registers
    for call-crossing intervals, eviction of farther-ending intervals,
    spilling through two reserved scratch registers) -> prologue/epilogue
    insertion with the RISC-V calling convention. *)

exception Codegen_error of string

type item = string Riscv_isa.Isa.t Assembler.Asm.item

val func_label : string -> string
(** Assembly label of a function's entry (["f_<name>"]). *)

val block_label : string -> int -> string
(** Assembly label of basic block [bid] of function [name]
    ([".L<name>_<bid>"]); kept in [Image.symbols] as the per-block
    IR<->image mapping the translation validator consumes. *)

val ret_label : string -> string
(** Label of the shared epilogue ([".L<name>_ret"]); execution falls
    through it, so it is {e not} a block boundary. *)

val emit_function :
  globals:(string, int) Hashtbl.t -> Ssa_ir.Ir.func -> item list
(** Compile one function (mutates it: edge splitting, RPO layout).
    @raise Codegen_error on more than 8 register arguments or scratch
    exhaustion. *)

val layout_globals : Ssa_ir.Ir.data_def list -> (string, int) Hashtbl.t

val compile : Ssa_ir.Ir.program -> item list
(** Generate the complete RV32IM item list: the [_start] stub
    ([jal ra, main; ebreak]), all functions, and the data section. *)

val compile_to_image : Ssa_ir.Ir.program -> Assembler.Image.t
