(** Shared reporting vocabulary for the static binary verifiers
    ([Straight_lint] and [Riscv_lint]): a finding record with severity,
    a formatter, and a dependency-free JSON emitter so CI can archive
    lint reports as build artifacts. *)

type severity = Error | Warning | Info

type finding = {
  pc : int;            (** byte address of the offending instruction *)
  check : string;      (** short machine-stable name of the check *)
  severity : severity;
  message : string;
  func : string option;
      (** enclosing function, when the check knows it (the translation
          validator always does; the binary linters do not) *)
}

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val finding :
  ?severity:severity -> ?func:string -> pc:int -> check:string -> string ->
  finding
(** Build a finding; [severity] defaults to [Error], [func] to [None]. *)

val pp_finding : Format.formatter -> finding -> unit
(** One-line rendering: ["0x<pc>: [<check>] <message>"]. *)

val finding_to_string : finding -> string

val errors : finding list -> finding list
(** Just the [Error]-severity findings (the ones that fail a build). *)

val json_escape : string -> string

val finding_to_json : finding -> string
(** One finding as a JSON object. *)

val report_to_json : ?schema:string -> (string * finding list) list -> string
(** A whole lint run as JSON, one labeled entry per linted image:
    [{ "findings_total": N, "errors": N, "warnings": N, "infos": N,
       "images": [{ "label", "findings" }] }], prefixed with a
    ["schema"] key when [?schema] is given.  Extensions over the
    original shape are additive, so old readers keep working. *)
