(* Shared reporting vocabulary for the static binary verifiers
   (lib/straight_lint and lib/riscv_lint): one finding record with a
   severity, a formatter, and a dependency-free JSON emitter so CI can
   archive lint reports as build artifacts.

   The [check] field is a short machine-stable name ("live-window",
   "uninit-read", ...): tools and tests match on it, so renaming one is
   a breaking change. *)

type severity = Error | Warning | Info

type finding = {
  pc : int;            (* byte address of the offending instruction *)
  check : string;      (* short machine-stable name of the check *)
  severity : severity;
  message : string;
  func : string option;  (* enclosing function, when the check knows it *)
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let finding ?(severity = Error) ?func ~pc ~check message =
  { pc; check; severity; message; func }

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "0x%x: [%s]%s %s%s" f.pc f.check
    (match f.func with None -> "" | Some fn -> " (" ^ fn ^ ")")
    (match f.severity with Error -> "" | s -> severity_name s ^ ": ")
    f.message

let finding_to_string (f : finding) = Format.asprintf "%a" pp_finding f

let errors (fs : finding list) : finding list =
  List.filter (fun f -> f.severity = Error) fs

(* ---------- JSON ---------- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json (f : finding) : string =
  let func_field =
    match f.func with
    | None -> ""
    | Some fn -> Printf.sprintf ", \"func\": \"%s\"" (json_escape fn)
  in
  Printf.sprintf
    "{\"pc\": %d, \"check\": \"%s\", \"severity\": \"%s\", \"message\": \
     \"%s\"%s}"
    f.pc (json_escape f.check)
    (severity_name f.severity)
    (json_escape f.message) func_field

(* [report_to_json ?schema groups] renders a whole lint run: one entry
   per linted image, labeled by target/configuration.  The shape is
   stable, and only ever extended additively (old readers keep working):

     { "schema": "...",            -- only when [?schema] is given
       "findings_total": N,
       "errors": N, "warnings": N, "infos": N,
       "images": [ { "label": "...", "findings": [ {...}, ... ] } ] } *)
let report_to_json ?schema (groups : (string * finding list) list) : string =
  let buf = Buffer.create 1024 in
  let total =
    List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 groups
  in
  let count sev =
    List.fold_left
      (fun acc (_, fs) ->
         acc + List.length (List.filter (fun f -> f.severity = sev) fs))
      0 groups
  in
  Buffer.add_string buf "{\n";
  (match schema with
   | None -> ()
   | Some s ->
     Buffer.add_string buf
       (Printf.sprintf "  \"schema\": \"%s\",\n" (json_escape s)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"findings_total\": %d,\n  \"errors\": %d,\n  \"warnings\": %d,\n\
       \  \"infos\": %d,\n  \"images\": [" total (count Error) (count Warning)
       (count Info));
  List.iteri
    (fun i (label, fs) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf "\n    {\n      \"label\": \"%s\",\n      \"findings\": ["
            (json_escape label));
       List.iteri
         (fun j f ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf ("\n        " ^ finding_to_json f))
         fs;
       if fs <> [] then Buffer.add_string buf "\n      ";
       Buffer.add_string buf "]\n    }")
    groups;
  if groups <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf
