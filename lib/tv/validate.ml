(* Per-function symbolic translation validation (the tentpole of lib/tv).

   For every function we walk the SSA IR and the linked machine code in
   lockstep, block by block, evaluating both sides into the shared term
   algebra of [Term].  The machine side threads the real operand
   semantics — STRAIGHT register distances against a symbolic result
   ring, RV32IM against a 32-entry register file — so a wrong distance
   or a misallocated register reads the *wrong term*, not just an
   out-of-range encoding.  At every observable point the two sides must
   normalize to equal terms: non-frame store address/value pairs in
   program order, call targets and argument vectors, the return value,
   plus the machine-level return protocol (return address, SP restored,
   riscv callee-saved registers).

   Control flow is matched through the block labels both back-ends
   leave in the image's symbol table (".L<fn>_<bid>").  A block's
   machine code runs from its label until it reaches the label of the
   IR successor under validation; conditional branches consume the IR
   path condition and must agree with it (the diverging predicate is
   reported otherwise).  Loops need no unrolling: states meeting at a
   merge block (>= 2 predecessors, or the entry) are *joined* lane by
   lane — equal terms stay, terms that correlate to the same IR
   phi-web become the canonical [Join (bid, v)] leaf on both sides,
   correlated frame slots become [JoinM], anything else is havocked to
   [Dead].  Each lane can only step concrete -> Join -> Dead, so the
   fixpoint terminates; the join *is* the back-edge havoc.

   Memory: addresses that normalize to an SP-at-entry displacement are
   frame-private and tracked in side maps (one per side — the machine
   frame also holds spills and callee-saved saves); everything else is
   an observable event, and loads from it are uninterpreted terms keyed
   by a memory-version counter that both sides advance identically
   (reset to a per-block base at block entry, bumped per non-frame
   store and per call).  Calls are summarized: both sides bind the
   result to the same [Retcall] leaf, the machine side havocs exactly
   the state the calling convention gives up, and the (documented)
   frame-disjointness assumption lets frame maps survive the call.

   The validator abstains — an [Info] "tv-abstain" finding, never a
   silent pass — when a function defeats it: step/join budgets
   exhausted, missing labels, instructions outside the back-ends'
   repertoire.  Errors are real refutations up to the abstraction;
   passes are sound up to normalization incompleteness never conflating
   distinct values (QCheck-pinned in [Term]). *)

module Ir = Ssa_ir.Ir
module An = Ssa_ir.Analysis
module T = Term
module Image = Assembler.Image
module Sisa = Straight_isa.Isa
module Risa = Riscv_isa.Isa

type target = Straight | Riscv

let target_name = function Straight -> "straight" | Riscv -> "riscv"

type finding = Lint_report.finding

(* ---------- program cloning ---------- *)

(* Both back-ends mutate the IR they compile (edge splitting, layout,
   DCE), so validating X against its image requires compiling a clone
   when the caller wants to keep X pristine — and the *mutated* clone is
   what the image is validated against. *)
let clone_func (f : Ir.func) : Ir.func =
  { Ir.name = f.Ir.name;
    nparams = f.Ir.nparams;
    nvalues = f.Ir.nvalues;
    frame_bytes = f.Ir.frame_bytes;
    blocks =
      List.map
        (fun (b : Ir.block) ->
           { Ir.bid = b.Ir.bid; insts = b.Ir.insts; term = b.Ir.term })
        f.Ir.blocks }

let clone_program (p : Ir.program) : Ir.program =
  { Ir.funcs = List.map clone_func p.Ir.funcs; data = p.Ir.data }

(* ---------- symbolic states ---------- *)

module IMap = Map.Make (Int)

(* The STRAIGHT result ring: [front] holds the most recent results
   (head = distance 1), [rest] stands for every deeper slot.  [sp] is
   the architectural SP. *)
type ring = { front : T.t list; flen : int; rest : T.t; sp : T.t }

type mstate = Mring of ring | Mregs of T.t array

type state = {
  env : T.t IMap.t;    (* IR value -> term *)
  irmem : T.t IMap.t;  (* IR-side frame slots, by SP0 displacement *)
  mmem : T.t IMap.t;   (* machine-side frame slots (locals + spills) *)
  ms : mstate;
}

(* Observable events of one block, in program order. *)
type ev = Estore of T.t * T.t | Ecall of string * T.t list

type goal = Gblock of Ir.block_id | Gret of T.t

(* ---------- per-function context ---------- *)

type code = Cstraight of Sisa.resolved option array
          | Criscv of Risa.resolved option array

type fctx = {
  target : target;
  image : Image.t;
  code : code;
  arity : (string, int) Hashtbl.t;        (* callee -> nparams *)
  fun_addrs : (int, string) Hashtbl.t;    (* f_<g> address -> g *)
  globals : (string, int) Hashtbl.t;
  fn : Ir.func;
  cfg : An.cfg;
  lv : An.liveness;
  bounds : (int, Ir.block_id list) Hashtbl.t;  (* label addr -> bids *)
  block_addr : (Ir.block_id, int) Hashtbl.t;
  max_dist : int;
  mutable frame_disp : int;   (* net SP displacement after the prologue *)
  mutable findings : finding list;  (* reversed *)
  seen : (int * string * string, unit) Hashtbl.t;
      (* fixpoint iteration re-walks blocks; identical findings dedup *)
  mutable errors : int;
  mutable steps : int;
}

exception Abandon_func  (* abstained / error cap; findings recorded *)
exception Dead_path     (* this path cannot continue; finding recorded *)

let max_errors = 24
let step_budget = 400_000
let join_budget = 2_000

let add_finding ctx ?(severity = Lint_report.Error) ~pc ~check msg =
  let key = (pc, check, msg) in
  let fresh = not (Hashtbl.mem ctx.seen key) in
  if fresh then begin
    Hashtbl.replace ctx.seen key ();
    ctx.findings <-
      Lint_report.finding ~severity ~func:ctx.fn.Ir.name ~pc ~check msg
      :: ctx.findings
  end;
  if fresh && severity = Lint_report.Error then begin
    ctx.errors <- ctx.errors + 1;
    if ctx.errors > max_errors then begin
      ctx.findings <-
        Lint_report.finding ~severity:Lint_report.Info
          ~func:ctx.fn.Ir.name ~pc ~check:"tv-abstain"
          "error cap reached; validation of this function stopped"
        :: ctx.findings;
      raise Abandon_func
    end
  end

let abstain ctx ~pc msg =
  add_finding ctx ~severity:Lint_report.Info ~pc ~check:"tv-abstain" msg;
  raise Abandon_func

let bump_step ctx ~pc =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > step_budget then
    abstain ctx ~pc "step budget exhausted (function too large to validate)"

(* Memory versions restart from a canonical per-block base so loop
   iterations produce identical terms and the merge join can converge;
   100k leaves room for any block's own stores/calls. *)
let base_ver (rpo_idx : int) = (rpo_idx + 1) * 100_000

let trail_str (trail : Ir.block_id list) =
  String.concat "->"
    (List.rev_map (fun b -> Printf.sprintf "bb%d" b) trail)

(* ---------- predicates ---------- *)

let pred_not (t : T.t) : T.t =
  match t with
  | T.Cmp (op, a, b) -> T.normalize (T.Cmp (T.neg_cmp op, a, b))
  | t -> T.normalize (T.Cmp (Ir.Eq, t, T.Const 0l))

let mk_ne0 (t : T.t) : T.t =
  match t with
  | T.Cmp _ -> t
  | T.Const c -> T.Const (if c <> 0l then 1l else 0l)
  | t -> T.normalize (T.Cmp (Ir.Ne, t, T.Const 0l))

let mk_eq0 (t : T.t) : T.t =
  match t with
  | T.Const c -> T.Const (if c = 0l then 1l else 0l)
  | t -> pred_not (mk_ne0 t)

let cmpop_of_cond : Risa.branch_cond -> Ir.cmpop = function
  | Risa.Beq -> Ir.Eq | Risa.Bne -> Ir.Ne | Risa.Blt -> Ir.Lt
  | Risa.Bge -> Ir.Ge | Risa.Bltu -> Ir.Ltu | Risa.Bgeu -> Ir.Geu

(* ---------- ALU terms ---------- *)

let binop_of_salu : Sisa.alu_op -> Ir.binop option = function
  | Sisa.Add -> Some Ir.Add | Sisa.Sub -> Some Ir.Sub
  | Sisa.And -> Some Ir.And | Sisa.Or -> Some Ir.Or
  | Sisa.Xor -> Some Ir.Xor | Sisa.Sll -> Some Ir.Shl
  | Sisa.Srl -> Some Ir.Lshr | Sisa.Sra -> Some Ir.Ashr
  | Sisa.Mul -> Some Ir.Mul | Sisa.Div -> Some Ir.Div
  | Sisa.Divu -> Some Ir.Divu | Sisa.Rem -> Some Ir.Rem
  | Sisa.Remu -> Some Ir.Remu
  | Sisa.Slt | Sisa.Sltu | Sisa.Mulh -> None

let term_of_salu (op : Sisa.alu_op) (a : T.t) (b : T.t) : T.t =
  T.normalize
    (match op with
     | Sisa.Slt -> T.Cmp (Ir.Lt, a, b)
     | Sisa.Sltu -> T.Cmp (Ir.Ltu, a, b)
     | Sisa.Mulh -> T.Mulh (a, b)
     | op ->
       (match binop_of_salu op with
        | Some bop -> T.Bin (bop, a, b)
        | None -> assert false))

let term_of_salui (op : Sisa.alui_op) (a : T.t) (imm : int32) : T.t =
  T.normalize
    (match op with
     | Sisa.Slti -> T.Cmp (Ir.Lt, a, T.Const imm)
     | Sisa.Sltui -> T.Cmp (Ir.Ltu, a, T.Const imm)
     | op -> term_of_salu (Sisa.alu_of_alui op) a (T.Const imm))

let binop_of_ralu : Risa.alu_op -> Ir.binop option = function
  | Risa.Add -> Some Ir.Add | Risa.Sub -> Some Ir.Sub
  | Risa.And -> Some Ir.And | Risa.Or -> Some Ir.Or
  | Risa.Xor -> Some Ir.Xor | Risa.Sll -> Some Ir.Shl
  | Risa.Srl -> Some Ir.Lshr | Risa.Sra -> Some Ir.Ashr
  | Risa.Mul -> Some Ir.Mul | Risa.Div -> Some Ir.Div
  | Risa.Divu -> Some Ir.Divu | Risa.Rem -> Some Ir.Rem
  | Risa.Remu -> Some Ir.Remu
  | Risa.Slt | Risa.Sltu | Risa.Mulh | Risa.Mulhsu | Risa.Mulhu -> None

(* ---------- IR-side execution of one block body ---------- *)

let lookup ctx ~pc env (v : Ir.value) : T.t =
  match IMap.find_opt v env with
  | Some t -> t
  | None ->
    abstain ctx ~pc (Printf.sprintf "internal: IR value v%d unbound" v)

let operand ctx ~pc env : Ir.operand -> T.t = function
  | Ir.Const c -> T.Const c
  | Ir.Val v -> lookup ctx ~pc env v

let addr_term base off =
  T.normalize (T.Bin (Ir.Add, base, T.Const (Int32.of_int off)))

(* Execute the non-phi instructions of [b] (phis transfer at edges).
   Returns the extended env, the IR frame map, the advanced memory
   version and the observable events (reversed). *)
let exec_ir ctx (st : state) (ver0 : int) (b : Ir.block) ~(pc : int) :
  T.t IMap.t * T.t IMap.t * int * ev list =
  let env = ref st.env and irmem = ref st.irmem in
  let ver = ref ver0 and evs = ref [] in
  let opnd op = operand ctx ~pc !env op in
  List.iter
    (fun (v, inst) ->
       bump_step ctx ~pc;
       let bind t = env := IMap.add v t !env in
       match inst with
       | Ir.Phi _ -> ()
       | Ir.Bin (op, a, b') -> bind (T.normalize (T.Bin (op, opnd a, opnd b')))
       | Ir.Cmp (op, a, b') -> bind (T.normalize (T.Cmp (op, opnd a, opnd b')))
       | Ir.Load (a, off) ->
         let addr = addr_term (opnd a) off in
         bind
           (match addr with
            | T.Sp k ->
              (match IMap.find_opt k !irmem with
               | Some t -> t
               | None -> T.Uninit k)
            | _ -> T.Load (!ver, addr))
       | Ir.Store (x, a, off) ->
         let addr = addr_term (opnd a) off in
         let xv = opnd x in
         (match addr with
          | T.Sp k -> irmem := IMap.add k xv !irmem
          | _ ->
            evs := Estore (addr, xv) :: !evs;
            incr ver);
         bind xv
       | Ir.Call (g, args) ->
         evs := Ecall (g, List.map opnd args) :: !evs;
         bind (T.Retcall !ver);
         incr ver
       | Ir.Frame_addr off -> bind (T.Sp (ctx.frame_disp + off))
       | Ir.Global_addr s ->
         (match Hashtbl.find_opt ctx.globals s with
          | Some a -> bind (T.Const (Int32.of_int a))
          | None ->
            abstain ctx ~pc (Printf.sprintf "unknown global %s" s)))
    b.Ir.insts;
  (!env, !irmem, !ver, !evs)

(* ---------- machine-side execution ---------- *)

(* Shared load/store classification: SP-displacement addresses hit the
   side-private frame map, anything else is an uninterpreted load or an
   observable store event. *)
let m_load mmem ver (addr : T.t) : T.t =
  match addr with
  | T.Sp k -> (match IMap.find_opt k !mmem with
      | Some t -> t
      | None -> T.Uninit k)
  | _ -> T.Load (!ver, addr)

let m_store mmem evs ver (addr : T.t) (x : T.t) : unit =
  match addr with
  | T.Sp k -> mmem := IMap.add k x !mmem
  | _ ->
    evs := Estore (addr, x) :: !evs;
    incr ver

(* Direction through a conditional branch: does the taken edge lead to
   the goal block's label?  (Cond_br targets are branched to directly —
   critical edges are split before layout on both back-ends.) *)
let leads_to_goal ctx ~goal ~target =
  match goal with
  | Gret _ -> false
  | Gblock g ->
    (match Hashtbl.find_opt ctx.block_addr g with
     | Some a -> a = target
     | None -> false)

(* Consume the IR path condition at a machine conditional branch and
   return the next pc.  A statically-forced branch (condition a
   constant) follows its direction without consuming anything. *)
let branch ctx ~pc ~pred ~trail ~goal ~(taken_pred : T.t) ~(target : int) :
  int =
  match taken_pred with
  | T.Const c -> if c <> 0l then target else pc + 4
  | _ ->
    (match !pred with
     | None ->
       add_finding ctx ~pc ~check:"tv-cfg"
         (Printf.sprintf
            "machine code branches on %s where the IR path (%s) has no \
             conditional branch"
            (T.to_string taken_pred) (trail_str trail));
       raise Dead_path
     | Some ir_p ->
       pred := None;
       let taken = leads_to_goal ctx ~goal ~target in
       let mp = if taken then taken_pred else pred_not taken_pred in
       if mp <> ir_p then
         add_finding ctx ~pc ~check:"tv-branch"
           (Printf.sprintf
              "path condition diverges on %s: ir=%s mc=%s"
              (trail_str trail) (T.to_string ir_p) (T.to_string mp));
       if taken then target else pc + 4)

(* Arrival test at the top of each machine step.  [bounds] maps a label
   address to the blocks starting there (several, when empty blocks
   collapse onto the same address).  Before the first instruction only
   a *different* co-located block counts as arrival, so a self-loop
   back edge still executes its body. *)
let arrived ctx ~pc ~moved ~src_bid ~goal =
  match goal with
  | Gret _ -> false
  | Gblock g ->
    (match Hashtbl.find_opt ctx.bounds pc with
     | Some bids when List.mem g bids -> moved || g <> src_bid
     | _ -> false)

(* Crossing a foreign block label without having reached the goal means
   machine control flow disagrees with the IR edge. *)
let check_stray_label ctx ~pc ~moved ~trail ~goal =
  if moved then
    match Hashtbl.find_opt ctx.bounds pc with
    | Some bids ->
      add_finding ctx ~pc ~check:"tv-cfg"
        (Printf.sprintf
           "machine code reaches bb%s where the IR path (%s) expects %s"
           (match bids with b :: _ -> string_of_int b | [] -> "?")
           (trail_str trail)
           (match goal with
            | Gblock g -> Printf.sprintf "bb%d" g
            | Gret _ -> "a return"));
      raise Dead_path
    | None -> ()

let fetch_idx ctx pc =
  let i = (pc - ctx.image.Image.text_base) / 4 in
  if pc land 3 = 0 && i >= 0 && i < Array.length ctx.image.Image.text then
    Some i
  else None

let decode_failure ctx ~pc =
  add_finding ctx ~pc ~check:"tv-decode"
    (Printf.sprintf "execution reaches 0x%x with no decodable instruction" pc);
  raise Dead_path

let callee_arity ctx ~pc g =
  match Hashtbl.find_opt ctx.arity g with
  | Some n -> n
  | None ->
    add_finding ctx ~pc ~check:"tv-call"
      (Printf.sprintf "call to unknown function %s" g);
    raise Dead_path

(* --- STRAIGHT --- *)

let ring_read (r : ring) (d : int) : T.t =
  if d = 0 then T.Const 0l
  else if d <= r.flen then List.nth r.front (d - 1)
  else r.rest

(* Keep the front long enough for any legal distance; deeper slots are
   unreadable (max_dist), so truncation loses nothing. *)
let ring_push (r : ring) (t : T.t) ~(max_dist : int) : ring =
  let front = t :: r.front and flen = r.flen + 1 in
  if flen > max_dist + 256 then
    { r with front = List.filteri (fun i _ -> i < max_dist) front;
             flen = max_dist }
  else { r with front; flen }

let exec_straight ctx (r0 : ring) (mmem0 : T.t IMap.t) (ver0 : int)
    ~(start_pc : int) ~(src_bid : Ir.block_id) ~(goal : goal)
    ~(pred0 : T.t option) ~(trail : Ir.block_id list) :
  ring * T.t IMap.t * int * ev list =
  let insns =
    match ctx.code with Cstraight a -> a | Criscv _ -> assert false
  in
  let r = ref r0 and mmem = ref mmem0 in
  let ver = ref ver0 and evs = ref [] in
  let pc = ref start_pc and moved = ref false in
  let pred = ref pred0 in
  let read d = ring_read !r d in
  let push t = r := ring_push !r t ~max_dist:ctx.max_dist in
  let rec loop () =
    if arrived ctx ~pc:!pc ~moved:!moved ~src_bid ~goal then
      (!r, !mmem, !ver, !evs)
    else begin
      check_stray_label ctx ~pc:!pc ~moved:!moved ~trail ~goal;
      bump_step ctx ~pc:!pc;
      let here = !pc in
      match (match fetch_idx ctx here with
             | Some i -> insns.(i)
             | None -> None) with
      | None -> decode_failure ctx ~pc:here
      | Some insn ->
        moved := true;
        (match insn with
         | Sisa.Alu (op, a, b) ->
           push (term_of_salu op (read a) (read b));
           pc := here + 4
         | Sisa.Alui (op, a, imm) ->
           push (term_of_salui op (read a) imm);
           pc := here + 4
         | Sisa.Lui imm ->
           push (T.Const (Int32.shift_left imm 12));
           pc := here + 4
         | Sisa.Rmov a ->
           push (read a);
           pc := here + 4
         | Sisa.Nop ->
           push (T.Const 0l);
           pc := here + 4
         | Sisa.Ld (b, off) ->
           push (m_load mmem ver (addr_term (read b) off));
           pc := here + 4
         | Sisa.St (v, b, off) ->
           let x = read v in
           m_store mmem evs ver (addr_term (read b) off) x;
           push x;
           pc := here + 4
         | Sisa.Spadd k ->
           let sp' = addr_term (!r).sp k in
           r := { !r with sp = sp' };
           push sp';
           pc := here + 4
         | Sisa.Bez (d, off) ->
           let tp = mk_eq0 (read d) in
           push (T.Const 0l);
           pc := branch ctx ~pc:here ~pred ~trail ~goal ~taken_pred:tp
               ~target:(here + (4 * off))
         | Sisa.Bnz (d, off) ->
           let tp = mk_ne0 (read d) in
           push (T.Const 0l);
           pc := branch ctx ~pc:here ~pred ~trail ~goal ~taken_pred:tp
               ~target:(here + (4 * off))
         | Sisa.J off ->
           push (T.Const 0l);
           pc := here + (4 * off)
         | Sisa.Jal off ->
           let target = here + (4 * off) in
           (match Hashtbl.find_opt ctx.fun_addrs target with
            | None ->
              add_finding ctx ~pc:here ~check:"tv-cfg"
                "JAL targets something that is not a function entry";
              raise Dead_path
            | Some g ->
              let n = callee_arity ctx ~pc:here g in
              (* STRAIGHT convention: argument i sits at distance n-i
                 just before the JAL (producers immediately precede
                 it, Fig. 5). *)
              let args = List.init n (fun i -> read (n - i)) in
              evs := Ecall (g, args) :: !evs;
              let id = !ver in
              incr ver;
              (* Returning, distance 1 is the callee's JR slot and
                 distance 2 its return value; everything deeper shifted
                 by an unknowable dynamic instruction count. *)
              r := { front = [ T.Dead (id, 0); T.Retcall id ];
                     flen = 2;
                     rest = T.Dead (id, 1);
                     sp = (!r).sp };
              pc := here + 4)
         | Sisa.Jr d ->
           (match goal with
            | Gblock g ->
              add_finding ctx ~pc:here ~check:"tv-cfg"
                (Printf.sprintf
                   "machine code returns where the IR path (%s) continues \
                    to bb%d" (trail_str trail) g);
              raise Dead_path
            | Gret ret_t ->
              if read d <> T.Ra then
                add_finding ctx ~pc:here ~check:"tv-ret-addr"
                  (Printf.sprintf
                     "JR operand [%d] is %s, not the incoming return \
                      address" d (T.to_string (read d)));
              if (!r).sp <> T.Sp 0 then
                add_finding ctx ~pc:here ~check:"tv-sp"
                  (Printf.sprintf "SP at return is %s, not restored"
                     (T.to_string (!r).sp));
              let rv = read 1 in
              if rv <> ret_t then
                add_finding ctx ~pc:here ~check:"tv-retval"
                  (Printf.sprintf
                     "return value diverges on %s: ir=%s mc=%s"
                     (trail_str trail) (T.to_string ret_t) (T.to_string rv));
              raise Exit)
         | Sisa.Halt ->
           add_finding ctx ~pc:here ~check:"tv-cfg"
             "HALT inside a function body";
           raise Dead_path);
        loop ()
    end
  in
  try loop () with Exit -> (!r, !mmem, !ver, !evs)

(* --- RV32IM --- *)

let callee_saved = [ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]
let call_clobbered = [ 5; 6; 7; 11; 12; 13; 14; 15; 16; 17; 28; 29; 30; 31 ]

let exec_riscv ctx (regs0 : T.t array) (mmem0 : T.t IMap.t) (ver0 : int)
    ~(start_pc : int) ~(src_bid : Ir.block_id) ~(goal : goal)
    ~(pred0 : T.t option) ~(trail : Ir.block_id list) :
  T.t array * T.t IMap.t * int * ev list =
  let insns =
    match ctx.code with Criscv a -> a | Cstraight _ -> assert false
  in
  let regs = Array.copy regs0 in
  let mmem = ref mmem0 in
  let ver = ref ver0 and evs = ref [] in
  let pc = ref start_pc and moved = ref false in
  let pred = ref pred0 in
  let set rd t = if rd <> 0 then regs.(rd) <- t in
  let alu_term op a b =
    match op with
    | Risa.Slt -> T.normalize (T.Cmp (Ir.Lt, a, b))
    | Risa.Sltu -> T.normalize (T.Cmp (Ir.Ltu, a, b))
    | Risa.Mulh -> T.normalize (T.Mulh (a, b))
    | Risa.Mulhsu | Risa.Mulhu ->
      abstain ctx ~pc:!pc "mulhsu/mulhu are outside the validated repertoire"
    | op ->
      (match binop_of_ralu op with
       | Some bop -> T.normalize (T.Bin (bop, a, b))
       | None -> assert false)
  in
  let rec loop () =
    if arrived ctx ~pc:!pc ~moved:!moved ~src_bid ~goal then
      (regs, !mmem, !ver, !evs)
    else begin
      check_stray_label ctx ~pc:!pc ~moved:!moved ~trail ~goal;
      bump_step ctx ~pc:!pc;
      let here = !pc in
      match (match fetch_idx ctx here with
             | Some i -> insns.(i)
             | None -> None) with
      | None -> decode_failure ctx ~pc:here
      | Some insn ->
        moved := true;
        (match insn with
         | Risa.Lui (rd, imm) ->
           set rd (T.Const (Int32.shift_left imm 12));
           pc := here + 4
         | Risa.Auipc (rd, imm) ->
           set rd
             (T.Const
                (Int32.add (Int32.of_int here) (Int32.shift_left imm 12)));
           pc := here + 4
         | Risa.Alui (op, rd, rs, imm) ->
           let a = regs.(rs) and c = T.Const (Int32.of_int imm) in
           set rd
             (match op with
              | Risa.Slti -> T.normalize (T.Cmp (Ir.Lt, a, c))
              | Risa.Sltiu -> T.normalize (T.Cmp (Ir.Ltu, a, c))
              | Risa.Addi -> alu_term Risa.Add a c
              | Risa.Xori -> alu_term Risa.Xor a c
              | Risa.Ori -> alu_term Risa.Or a c
              | Risa.Andi -> alu_term Risa.And a c
              | Risa.Slli -> alu_term Risa.Sll a c
              | Risa.Srli -> alu_term Risa.Srl a c
              | Risa.Srai -> alu_term Risa.Sra a c);
           pc := here + 4
         | Risa.Alu (op, rd, r1, r2) ->
           set rd (alu_term op regs.(r1) regs.(r2));
           pc := here + 4
         | Risa.Lw (rd, rs, imm) ->
           set rd (m_load mmem ver (addr_term regs.(rs) imm));
           pc := here + 4
         | Risa.Sw (rs2, rs1, imm) ->
           m_store mmem evs ver (addr_term regs.(rs1) imm) regs.(rs2);
           pc := here + 4
         | Risa.Branch (cond, r1, r2, off) ->
           let tp =
             T.normalize
               (T.Cmp (cmpop_of_cond cond, regs.(r1), regs.(r2)))
           in
           pc := branch ctx ~pc:here ~pred ~trail ~goal ~taken_pred:tp
               ~target:(here + off)
         | Risa.Jal (0, off) -> pc := here + off
         | Risa.Jal (1, off) ->
           let target = here + off in
           (match Hashtbl.find_opt ctx.fun_addrs target with
            | None ->
              add_finding ctx ~pc:here ~check:"tv-cfg"
                "JAL ra targets something that is not a function entry";
              raise Dead_path
            | Some g ->
              let n = callee_arity ctx ~pc:here g in
              let args = List.init n (fun i -> regs.(10 + i)) in
              evs := Ecall (g, args) :: !evs;
              let id = !ver in
              incr ver;
              set 10 (T.Retcall id);
              List.iter (fun rr -> set rr (T.Dead (id, rr))) call_clobbered;
              set 1 (T.Const (Int32.of_int (here + 4)));
              pc := here + 4)
         | Risa.Jal (_, _) ->
           add_finding ctx ~pc:here ~check:"tv-cfg"
             "JAL with an unexpected link register";
           raise Dead_path
         | Risa.Jalr (0, 1, 0) ->
           (match goal with
            | Gblock g ->
              add_finding ctx ~pc:here ~check:"tv-cfg"
                (Printf.sprintf
                   "machine code returns where the IR path (%s) continues \
                    to bb%d" (trail_str trail) g);
              raise Dead_path
            | Gret ret_t ->
              if regs.(1) <> T.Ra then
                add_finding ctx ~pc:here ~check:"tv-ret-addr"
                  (Printf.sprintf "ra at return is %s, not the incoming \
                                   return address" (T.to_string regs.(1)));
              if regs.(2) <> T.Sp 0 then
                add_finding ctx ~pc:here ~check:"tv-sp"
                  (Printf.sprintf "sp at return is %s, not restored"
                     (T.to_string regs.(2)));
              List.iter
                (fun rr ->
                   if regs.(rr) <> T.Reg0 rr then
                     add_finding ctx ~pc:here ~check:"tv-callee-saved"
                       (Printf.sprintf "s-register x%d returns as %s, not \
                                        its entry value" rr
                          (T.to_string regs.(rr))))
                callee_saved;
              if regs.(10) <> ret_t then
                add_finding ctx ~pc:here ~check:"tv-retval"
                  (Printf.sprintf "return value diverges on %s: ir=%s mc=%s"
                     (trail_str trail) (T.to_string ret_t)
                     (T.to_string regs.(10)));
              raise Exit)
         | Risa.Jalr (_, _, _) ->
           add_finding ctx ~pc:here ~check:"tv-cfg"
             "indirect jump outside the return idiom";
           raise Dead_path
         | Risa.Ebreak ->
           add_finding ctx ~pc:here ~check:"tv-cfg"
             "EBREAK inside a function body";
           raise Dead_path);
        loop ()
    end
  in
  try loop () with Exit -> (regs, !mmem, !ver, !evs)

let exec_machine ctx (st : state) (ver0 : int) ~start_pc ~src_bid ~goal
    ~pred0 ~trail : mstate * T.t IMap.t * int * ev list =
  match st.ms with
  | Mring r ->
    let r', mmem', ver', evs =
      exec_straight ctx r st.mmem ver0 ~start_pc ~src_bid ~goal ~pred0 ~trail
    in
    (Mring r', mmem', ver', evs)
  | Mregs regs ->
    let regs', mmem', ver', evs =
      exec_riscv ctx regs st.mmem ver0 ~start_pc ~src_bid ~goal ~pred0 ~trail
    in
    (Mregs regs', mmem', ver', evs)

(* ---------- observable comparison ---------- *)

let pp_ev = function
  | Estore (a, x) ->
    Printf.sprintf "store %s <- %s" (T.to_string a) (T.to_string x)
  | Ecall (g, args) ->
    Printf.sprintf "call %s(%s)" g
      (String.concat ", " (List.map T.to_string args))

let compare_events ctx ~pc ~trail (ir_rev : ev list) (mc_rev : ev list) =
  let irl = List.rev ir_rev and mcl = List.rev mc_rev in
  let ni = List.length irl and nm = List.length mcl in
  if ni <> nm then
    add_finding ctx ~pc ~check:"tv-event-order"
      (Printf.sprintf
         "block on %s emits %d observable events in the IR but %d in \
          machine code" (trail_str trail) ni nm);
  let rec walk k irs mcs =
    match irs, mcs with
    | [], _ | _, [] -> ()
    | i :: irs', m :: mcs' ->
      (match i, m with
       | Estore (ia, ix), Estore (ma, mx) ->
         if ia <> ma then
           add_finding ctx ~pc ~check:"tv-store"
             (Printf.sprintf
                "store #%d address diverges on %s: ir=%s mc=%s" k
                (trail_str trail) (T.to_string ia) (T.to_string ma))
         else if ix <> mx then
           add_finding ctx ~pc ~check:"tv-store"
             (Printf.sprintf
                "store #%d value diverges on %s: ir=%s mc=%s" k
                (trail_str trail) (T.to_string ix) (T.to_string mx))
       | Ecall (ig, ia), Ecall (mg, ma) ->
         if ig <> mg then
           add_finding ctx ~pc ~check:"tv-call"
             (Printf.sprintf "call #%d targets %s in the IR but %s in \
                              machine code" k ig mg)
         else
           List.iteri
             (fun j (x, y) ->
                if x <> y then
                  add_finding ctx ~pc ~check:"tv-call"
                    (Printf.sprintf
                       "call #%d to %s: argument %d diverges on %s: ir=%s \
                        mc=%s" k ig j (trail_str trail) (T.to_string x)
                       (T.to_string y)))
             (List.combine ia ma
              |> fun l -> if List.length ia = List.length ma then l else [])
       | _ ->
         add_finding ctx ~pc ~check:"tv-event-order"
           (Printf.sprintf "event #%d on %s: ir has [%s], machine code has \
                            [%s]" k (trail_str trail) (pp_ev i) (pp_ev m)));
      walk (k + 1) irs' mcs'
  in
  walk 0 irl mcl

(* ---------- merge joins ---------- *)

(* Smallest entry-frame value carrying exactly (tA, tB) across the two
   incoming states: the canonical representative for a correlated
   unknown.  IntSet folds in ascending order, so the choice is
   deterministic and shared between the IR env and machine lanes. *)
let rel ~ef ~envA ~envB (tA : T.t) (tB : T.t) : Ir.value option =
  An.IntSet.fold
    (fun v acc ->
       match acc with
       | Some _ -> acc
       | None ->
         if IMap.find_opt v envA = Some tA && IMap.find_opt v envB = Some tB
         then Some v
         else None)
    ef None

let join_lane ~bid ~ef ~envA ~envB ~dead (tA : T.t) (tB : T.t) : T.t =
  if tA = tB then tA
  else
    match rel ~ef ~envA ~envB tA tB with
    | Some v -> T.Join (bid, v)
    | None -> dead

let join_states ctx (sidx : int) (a : state) (b : state) : state =
  let bid = ctx.cfg.blocks.(sidx).Ir.bid in
  let ef = An.entry_frame ctx.lv sidx in
  let envA = a.env and envB = b.env in
  let lane = join_lane ~bid ~ef ~envA ~envB in
  let env =
    An.IntSet.fold
      (fun v acc ->
         let t =
           match IMap.find_opt v envA, IMap.find_opt v envB with
           | Some x, Some y -> lane ~dead:(T.Dead (bid, 500_000 + v)) x y
           | _ -> T.Dead (bid, 500_000 + v)
         in
         IMap.add v t acc)
      ef IMap.empty
  in
  (* Frame slots: the IR and machine maps join over the union of
     offsets; a machine slot whose two incoming terms match the IR
     slot's pair joins to the shared [JoinM] leaf, so values that
     round-trip through the frame stay correlated. *)
  let keys m acc = IMap.fold (fun k _ acc -> k :: acc) m acc in
  let all_keys =
    List.sort_uniq compare
      (keys a.irmem (keys b.irmem (keys a.mmem (keys b.mmem []))))
  in
  let irmem, mmem =
    List.fold_left
      (fun (irmem, mmem) k ->
         let get m = match IMap.find_opt k m with
           | Some t -> t
           | None -> T.Uninit k
         in
         let iA = get a.irmem and iB = get b.irmem in
         let mA = get a.mmem and mB = get b.mmem in
         let ir_t =
           if iA = iB then iA
           else
             match rel ~ef ~envA ~envB iA iB with
             | Some v -> T.Join (bid, v)
             | None -> T.JoinM (bid, k)
         in
         let mc_t =
           if mA = mB then mA
           else
             match rel ~ef ~envA ~envB mA mB with
             | Some v -> T.Join (bid, v)
             | None ->
               if mA = iA && mB = iB then T.JoinM (bid, k)
               else T.Dead (bid, 100_000 + k)
         in
         (IMap.add k ir_t irmem, IMap.add k mc_t mmem))
      (IMap.empty, IMap.empty) all_keys
  in
  let ms =
    match a.ms, b.ms with
    | Mring ra, Mring rb ->
      let n = min (max ra.flen rb.flen) ctx.max_dist in
      let front =
        List.init n
          (fun i ->
             let tA = ring_read ra (i + 1) and tB = ring_read rb (i + 1) in
             lane ~dead:(T.Dead (bid, i)) tA tB)
      in
      let rest = if ra.rest = rb.rest then ra.rest else T.Dead (bid, -1) in
      let sp = if ra.sp = rb.sp then ra.sp else T.Dead (bid, -2) in
      Mring { front; flen = n; rest; sp }
    | Mregs xa, Mregs xb ->
      Mregs
        (Array.init 32
           (fun i ->
              if i = 0 then T.Const 0l
              else lane ~dead:(T.Dead (bid, 1_000 + i)) xa.(i) xb.(i)))
    | _ -> assert false
  in
  { env; irmem; mmem; ms }

let mstate_equal x y =
  match x, y with
  | Mring a, Mring b -> a.front = b.front && a.rest = b.rest && a.sp = b.sp
  | Mregs a, Mregs b -> a = b
  | _ -> false

let state_equal s1 s2 =
  IMap.equal ( = ) s1.env s2.env
  && IMap.equal ( = ) s1.irmem s2.irmem
  && IMap.equal ( = ) s1.mmem s2.mmem
  && mstate_equal s1.ms s2.ms

(* ---------- the per-function driver ---------- *)

(* Bind the successor's phis against the [pred_bid] edge (all in
   parallel, against the predecessor's env) and trim to the successor's
   entry frame so states stay small and joins see exactly the live
   values. *)
let edge_env ctx ~pc ~pred_bid ~succ_idx (env : T.t IMap.t) : T.t IMap.t =
  let sb = ctx.cfg.blocks.(succ_idx) in
  let bound =
    List.fold_left
      (fun acc (v, inst) ->
         match inst with
         | Ir.Phi arms ->
           (match List.assoc_opt pred_bid arms with
            | Some op -> IMap.add v (operand ctx ~pc env op) acc
            | None ->
              abstain ctx ~pc
                (Printf.sprintf "phi v%d has no arm for bb%d" v pred_bid))
         | _ -> acc)
      env sb.Ir.insts
  in
  An.IntSet.fold
    (fun v acc ->
       match IMap.find_opt v bound with
       | Some t -> IMap.add v t acc
       | None ->
         abstain ctx ~pc
           (Printf.sprintf "internal: entry-frame value v%d missing at bb%d"
              v sb.Ir.bid))
    (An.entry_frame ctx.lv succ_idx)
    IMap.empty

let block_start ctx bid ~pc =
  match Hashtbl.find_opt ctx.block_addr bid with
  | Some a -> a
  | None -> abstain ctx ~pc (Printf.sprintf "no label for bb%d" bid)

let run_function ctx (s0 : state) =
  let nb = Array.length ctx.cfg.blocks in
  let stored : state option array = Array.make nb None in
  let pending = Array.make nb false in
  let queue = Queue.create () in
  let pops = ref 0 in
  let is_merge i = i = 0 || List.length ctx.cfg.preds.(i) >= 2 in
  let enqueue i =
    if not pending.(i) then begin
      pending.(i) <- true;
      Queue.push i queue
    end
  in
  let rec run_block idx (st : state) trail =
    let b = ctx.cfg.blocks.(idx) in
    let bid = b.Ir.bid in
    let start_pc = block_start ctx bid ~pc:ctx.image.Image.entry in
    let env', irmem', ver', ir_evs =
      exec_ir ctx st (base_ver idx) b ~pc:start_pc
    in
    let follow_edge ~goal_bid ~ir_pred =
      try
        let ms', mmem', _ver_m, mc_evs =
          exec_machine ctx { st with env = env' } (base_ver idx) ~start_pc
            ~src_bid:bid ~goal:(Gblock goal_bid) ~pred0:ir_pred ~trail
        in
        compare_events ctx ~pc:start_pc ~trail ir_evs mc_evs;
        let sidx = An.block_index ctx.cfg goal_bid in
        let env'' =
          edge_env ctx ~pc:start_pc ~pred_bid:bid ~succ_idx:sidx env'
        in
        let st' = { env = env''; irmem = irmem'; mmem = mmem'; ms = ms' } in
        ignore ver';
        if is_merge sidx then begin
          match stored.(sidx) with
          | None ->
            stored.(sidx) <- Some st';
            enqueue sidx
          | Some old ->
            let joined = join_states ctx sidx old st' in
            if not (state_equal joined old) then begin
              stored.(sidx) <- Some joined;
              enqueue sidx
            end
        end
        else run_block sidx st' (ctx.cfg.blocks.(sidx).Ir.bid :: trail)
      with Dead_path -> ()
    in
    match b.Ir.term with
    | Ir.Ret op ->
      let ret_t = operand ctx ~pc:start_pc env' op in
      (try
         let _ms, _mmem, _ver, mc_evs =
           exec_machine ctx { st with env = env' } (base_ver idx) ~start_pc
             ~src_bid:bid ~goal:(Gret ret_t) ~pred0:None ~trail
         in
         compare_events ctx ~pc:start_pc ~trail ir_evs mc_evs
       with Dead_path -> ())
    | Ir.Br t -> follow_edge ~goal_bid:t ~ir_pred:None
    | Ir.Cond_br (c, t1, t2) ->
      let ct = operand ctx ~pc:start_pc env' c in
      if t1 = t2 then follow_edge ~goal_bid:t1 ~ir_pred:None
      else (
        match ct with
        | T.Const cv ->
          (* statically dead IR edge: only the live one is walked *)
          follow_edge ~goal_bid:(if cv <> 0l then t1 else t2) ~ir_pred:None
        | _ ->
          follow_edge ~goal_bid:t1 ~ir_pred:(Some (mk_ne0 ct));
          follow_edge ~goal_bid:t2 ~ir_pred:(Some (mk_eq0 ct)))
  in
  stored.(0) <- Some s0;
  enqueue 0;
  while not (Queue.is_empty queue) do
    let idx = Queue.pop queue in
    pending.(idx) <- false;
    incr pops;
    if !pops > join_budget then
      abstain ctx ~pc:ctx.image.Image.entry
        "join budget exhausted (merge states failed to converge)";
    match stored.(idx) with
    | Some st ->
      (try run_block idx st [ ctx.cfg.blocks.(idx).Ir.bid ]
       with Dead_path -> ())
    | None -> assert false
  done

(* ---------- entry states and the prologue ---------- *)

let entry_state ctx : state =
  let n = ctx.fn.Ir.nparams in
  let env =
    List.fold_left
      (fun acc i -> IMap.add i (T.Param i) acc)
      IMap.empty
      (List.init n (fun i -> i))
  in
  let ms =
    match ctx.target with
    | Straight ->
      (* Distance 1 is the caller's JAL (the return address), distances
         2..n+1 the argument producers, newest first (Fig. 5/6). *)
      Mring
        { front = T.Ra :: List.init n (fun i -> T.Param (n - 1 - i));
          flen = n + 1;
          rest = T.Dead (-1, 0);
          sp = T.Sp 0 }
    | Riscv ->
      Mregs
        (Array.init 32
           (fun r ->
              if r = 0 then T.Const 0l
              else if r = 1 then T.Ra
              else if r = 2 then T.Sp 0
              else if r >= 10 && r < 10 + n then T.Param (r - 10)
              else T.Reg0 r))
  in
  { env; irmem = IMap.empty; mmem = IMap.empty; ms }

let validate_func ctx =
  let fname = ctx.fn.Ir.name in
  let flabel =
    match ctx.target with
    | Straight -> Straight_cc.Codegen.func_label fname
    | Riscv -> Riscv_cc.Codegen.func_label fname
  in
  match Image.find_symbol ctx.image flabel with
  | None ->
    abstain ctx ~pc:ctx.image.Image.entry
      (Printf.sprintf "function label %s not in the image" flabel)
  | Some faddr ->
    let s0 = entry_state ctx in
    let entry_bid = ctx.cfg.blocks.(0).Ir.bid in
    (* The prologue (between the function label and the entry block's
       label) belongs to no IR block: SP adjustment and callee-saved
       saves, no observable events. *)
    let ms', mmem', _ver, evs =
      exec_machine ctx s0 (base_ver 0) ~start_pc:faddr ~src_bid:(-1)
        ~goal:(Gblock entry_bid) ~pred0:None ~trail:[ entry_bid ]
    in
    compare_events ctx ~pc:faddr ~trail:[ entry_bid ] [] evs;
    let sp =
      match ms' with Mring r -> r.sp | Mregs regs -> regs.(2)
    in
    (match sp with
     | T.Sp d -> ctx.frame_disp <- d
     | t ->
       abstain ctx ~pc:faddr
         (Printf.sprintf "prologue leaves SP at non-static %s"
            (T.to_string t)));
    let ef0 = An.entry_frame ctx.lv 0 in
    let env0 =
      IMap.filter (fun v _ -> An.IntSet.mem v ef0) s0.env
    in
    run_function ctx { env = env0; irmem = IMap.empty; mmem = mmem'; ms = ms' }

(* ---------- whole-image validation ---------- *)

let decode_code target (image : Image.t) : code =
  match target with
  | Straight ->
    Cstraight (Array.map Straight_isa.Encoding.decode image.Image.text)
  | Riscv -> Criscv (Array.map Riscv_isa.Encoding.decode image.Image.text)

let validate_image ?(max_dist = Sisa.max_dist) ~(target : target)
    (prog : Ir.program) (image : Image.t) : finding list =
  let code = decode_code target image in
  let arity = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace arity f.Ir.name f.Ir.nparams)
    prog.Ir.funcs;
  let fun_addrs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
       let lab =
         match target with
         | Straight -> Straight_cc.Codegen.func_label f.Ir.name
         | Riscv -> Riscv_cc.Codegen.func_label f.Ir.name
       in
       match Image.find_symbol image lab with
       | Some a -> Hashtbl.replace fun_addrs a f.Ir.name
       | None -> ())
    prog.Ir.funcs;
  let globals =
    match target with
    | Straight -> Straight_cc.Codegen.layout_globals prog.Ir.data
    | Riscv -> Riscv_cc.Codegen.layout_globals prog.Ir.data
  in
  List.concat_map
    (fun (f : Ir.func) ->
       let cfg = An.build f in
       let lv = An.liveness cfg in
       let bounds = Hashtbl.create 32 in
       let block_addr = Hashtbl.create 32 in
       Array.iter
         (fun (b : Ir.block) ->
            let lab =
              match target with
              | Straight -> Straight_cc.Codegen.block_label f.Ir.name b.Ir.bid
              | Riscv -> Riscv_cc.Codegen.block_label f.Ir.name b.Ir.bid
            in
            match Image.find_symbol image lab with
            | Some a ->
              Hashtbl.replace block_addr b.Ir.bid a;
              Hashtbl.replace bounds a
                (b.Ir.bid
                 :: (match Hashtbl.find_opt bounds a with
                     | Some l -> l
                     | None -> []))
            | None -> ())
         cfg.An.blocks;
       let ctx =
         { target; image; code; arity; fun_addrs; globals; fn = f; cfg; lv;
           bounds; block_addr; max_dist; frame_disp = 0; findings = [];
           seen = Hashtbl.create 16;
           errors = 0; steps = 0 }
       in
       (try validate_func ctx with
        | Abandon_func -> ()
        | An.Invalid_ir msg | Invalid_argument msg ->
          ctx.findings <-
            Lint_report.finding ~severity:Lint_report.Info ~func:f.Ir.name
              ~pc:image.Image.entry ~check:"tv-abstain"
              (Printf.sprintf "IR analysis failed: %s" msg)
            :: ctx.findings);
       List.rev ctx.findings)
    prog.Ir.funcs

(* ---------- compile-and-validate front doors ---------- *)

let validate_straight ?(config = Straight_cc.Codegen.default_config)
    (p : Ir.program) : finding list =
  let p = clone_program p in
  let items = Straight_cc.Codegen.compile ~config p in
  let image = Assembler.Asm.Straight.assemble ~entry:"_start" items in
  validate_image ~max_dist:config.Straight_cc.Codegen.max_dist
    ~target:Straight p image

let validate_riscv (p : Ir.program) : finding list =
  let p = clone_program p in
  let items = Riscv_cc.Codegen.compile p in
  let image = Assembler.Asm.Riscv.assemble ~entry:"_start" items in
  validate_image ~target:Riscv p image

(* ---------- the mutation harness ---------- *)

(* Seeded single-instruction mutations of freshly generated STRAIGHT
   code: flip one operand distance, drop one RMOV, swap the operands of
   a non-commutative ALU op or a store.  Each is a real codegen bug
   shape (an off-by-one in distance fixing, a lost padding move, an
   argument-order slip), and the validator must reject every one with a
   finding naming the mutated function.

   Site selection is deterministic in the seed.  RMOV distance flips
   are excluded on purpose: adjacent ring slots frequently hold the
   same copied value, so flipping a copy's source is the one mutation
   shape that can be semantically invisible. *)

type mutation = {
  m_desc : string;       (* human-readable description of the change *)
  m_func : string;       (* the function whose body was mutated *)
  m_caught : bool;       (* did validation report an Error naming it? *)
  m_findings : finding list;
  m_images : (Image.t * Image.t) option;
      (* (original, mutated), when the mutated items still assembled;
         lets the harness ISS-check a miss for actual inequivalence *)
}

type site = {
  s_idx : int;
  s_kind : int;  (* 0 = distance flip, 1 = drop RMOV, 2 = operand swap *)
  s_desc : string;
  s_func : string;
  s_repl : Straight_cc.Codegen.item option;  (* None = drop the item *)
}

let flip d ~max_dist = if d + 1 <= max_dist then d + 1 else d - 1

let commutative_salu : Sisa.alu_op -> bool = function
  | Sisa.Add | Sisa.And | Sisa.Or | Sisa.Xor | Sisa.Mul -> true
  | _ -> false

let sites_of_items ~max_dist ~(known : (string, int) Hashtbl.t)
    (items : Straight_cc.Codegen.item list) : site list =
  let cur = ref None in
  let acc = ref [] in
  List.iteri
    (fun idx it ->
       (match it with
        | Assembler.Asm.Label l ->
          if String.length l > 2 && String.sub l 0 2 = "f_"
          && Hashtbl.mem known (String.sub l 2 (String.length l - 2))
          then cur := Some (String.sub l 2 (String.length l - 2))
          else if String.length l > 0 && l.[0] <> '.' then cur := None
        | _ -> ());
       match !cur, it with
       | Some fn, Assembler.Asm.Insn insn ->
         let add kind desc repl =
           acc := { s_idx = idx; s_kind = kind; s_desc = desc; s_func = fn;
                    s_repl = repl } :: !acc
         in
         let ins i = Some (Assembler.Asm.Insn i) in
         (match insn with
          | Sisa.Alu (op, a, b) ->
            if a > 0 then
              add 0
                (Printf.sprintf "%s: flip first operand distance %d -> %d"
                   fn a (flip a ~max_dist))
                (ins (Sisa.Alu (op, flip a ~max_dist, b)));
            if b > 0 then
              add 0
                (Printf.sprintf "%s: flip second operand distance %d -> %d"
                   fn b (flip b ~max_dist))
                (ins (Sisa.Alu (op, a, flip b ~max_dist)));
            if a <> b && not (commutative_salu op) then
              add 2
                (Printf.sprintf
                   "%s: swap operands of a non-commutative ALU op" fn)
                (ins (Sisa.Alu (op, b, a)))
          | Sisa.Alui (op, a, imm) ->
            if a > 0 then
              add 0
                (Printf.sprintf "%s: flip ALUI operand distance %d -> %d"
                   fn a (flip a ~max_dist))
                (ins (Sisa.Alui (op, flip a ~max_dist, imm)))
          | Sisa.Rmov d ->
            (* an RMOV [1] is a duplicate of the slot directly beneath
               it; dropping one only shifts deeper (often dead) slots
               and is frequently a semantic no-op, so only deeper
               copies are offered as drop sites *)
            if d >= 2 then
              add 1 (Printf.sprintf "%s: drop an RMOV [%d]" fn d) None
          | Sisa.Ld (b, off) ->
            if b > 0 then
              add 0
                (Printf.sprintf "%s: flip load base distance %d -> %d"
                   fn b (flip b ~max_dist))
                (ins (Sisa.Ld (flip b ~max_dist, off)))
          | Sisa.St (v, b, off) ->
            if v > 0 then
              add 0
                (Printf.sprintf "%s: flip store value distance %d -> %d"
                   fn v (flip v ~max_dist))
                (ins (Sisa.St (flip v ~max_dist, b, off)));
            if v <> b then
              add 2 (Printf.sprintf "%s: swap store value and base" fn)
                (ins (Sisa.St (b, v, off)))
          | Sisa.Bez (d, l) ->
            if d > 0 then
              add 0
                (Printf.sprintf "%s: flip branch operand distance %d -> %d"
                   fn d (flip d ~max_dist))
                (ins (Sisa.Bez (flip d ~max_dist, l)))
          | Sisa.Bnz (d, l) ->
            if d > 0 then
              add 0
                (Printf.sprintf "%s: flip branch operand distance %d -> %d"
                   fn d (flip d ~max_dist))
                (ins (Sisa.Bnz (flip d ~max_dist, l)))
          | _ -> ())
       | _ -> ())
    items;
  List.rev !acc

let mutation_trial ?(config = Straight_cc.Codegen.default_config)
    ~(fresh : unit -> Ir.program) ~(seed : int) () : mutation option =
  let p = fresh () in
  let items = Straight_cc.Codegen.compile ~config p in
  let known = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace known f.Ir.name f.Ir.nparams)
    p.Ir.funcs;
  let sites =
    sites_of_items ~max_dist:config.Straight_cc.Codegen.max_dist ~known items
  in
  if sites = [] then None
  else begin
    let pool_of k = List.filter (fun s -> s.s_kind = k) sites in
    let pools =
      List.filter (fun l -> l <> []) [ pool_of 0; pool_of 1; pool_of 2 ]
    in
    let pool = List.nth pools (abs seed mod List.length pools) in
    let site = List.nth pool (abs (seed / 7) mod List.length pool) in
    let items' =
      List.concat
        (List.mapi
           (fun i it ->
              if i <> site.s_idx then [ it ]
              else match site.s_repl with Some r -> [ r ] | None -> [])
           items)
    in
    match Assembler.Asm.Straight.assemble ~entry:"_start" items' with
    | exception Assembler.Asm.Asm_error msg ->
      Some { m_desc = site.s_desc ^ " (did not assemble: " ^ msg ^ ")";
             m_func = site.s_func; m_caught = false; m_findings = [];
             m_images = None }
    | image ->
      let base = Assembler.Asm.Straight.assemble ~entry:"_start" items in
      let findings =
        validate_image ~max_dist:config.Straight_cc.Codegen.max_dist
          ~target:Straight p image
      in
      let caught =
        List.exists
          (fun (f : finding) ->
             f.Lint_report.severity = Lint_report.Error
             && f.Lint_report.func = Some site.s_func)
          findings
      in
      Some { m_desc = site.s_desc; m_func = site.s_func;
             m_caught = caught; m_findings = findings;
             m_images = Some (base, image) }
  end
