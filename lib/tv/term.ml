(* The shared term algebra of the translation validator (lib/tv).

   Both the SSA IR and the decoded machine code evaluate into this one
   language: 32-bit constants, opaque leaves for the values a function
   receives from its environment (parameters, the return address, the
   incoming registers, the stack pointer), uninterpreted loads keyed by
   a memory-version counter, and the i32 ALU operators.  Two symbolic
   executions agree exactly when their observables normalize to equal
   terms, so [normalize] carries the proof burden: it must never change
   a term's value (QCheck pins this: [eval t env = eval (normalize t)
   env] over random environments) while being strong enough to cancel
   the syntactic noise codegen introduces (materialized constants,
   re-associated address arithmetic, SP displacement chains, xor/sltiu
   compare idioms).

   Equality after normalization is sound but incomplete: unequal terms
   only ever downgrade a real equivalence into a reported mismatch,
   never the reverse. *)

module Ir = Ssa_ir.Ir

type t =
  | Const of int32
  | Param of int          (* the n-th IR parameter at function entry *)
  | Ra                    (* the incoming return address *)
  | Reg0 of int           (* riscv: register r's value at entry *)
  | Sp of int             (* SP at function entry, plus a byte offset *)
  | Join of int * int     (* merge havoc correlated to IR value (bid, v) *)
  | JoinM of int * int    (* merge havoc of a frame slot (bid, offset) *)
  | Uninit of int         (* frame slot never stored, at byte offset *)
  | Dead of int * int     (* uncorrelated havoc: (source id, lane) *)
  | Bin of Ir.binop * t * t
  | Mulh of t * t         (* high word of the signed 64-bit product *)
  | Cmp of Ir.cmpop * t * t  (* 1l when the comparison holds, else 0l *)
  | Load of int * t       (* uninterpreted load: (memory version, addr) *)
  | Retcall of int        (* return value of the call at memory version *)

(* ---------- evaluation (the QCheck oracle) ---------- *)

(* A concrete environment: [leaf] values every opaque leaf (including
   [Sp 0], the SP base all [Sp k] offsets displace), [load] values every
   (version, address) pair.  Both must be pure functions. *)
type env = {
  leaf : t -> int32;
  load : int -> int32 -> int32;
}

let rec eval (env : env) (t : t) : int32 =
  match t with
  | Const c -> c
  | Sp k -> Int32.add (env.leaf (Sp 0)) (Int32.of_int k)
  | Param _ | Ra | Reg0 _ | Join _ | JoinM _ | Uninit _ | Dead _
  | Retcall _ -> env.leaf t
  | Bin (op, a, b) -> Ir.eval_binop op (eval env a) (eval env b)
  | Mulh (a, b) -> Straight_isa.Isa.eval_alu Straight_isa.Isa.Mulh
                     (eval env a) (eval env b)
  | Cmp (op, a, b) ->
    if Ir.eval_cmpop op (eval env a) (eval env b) then 1l else 0l
  | Load (v, a) -> env.load v (eval env a)

(* ---------- normalization ---------- *)

let commutative : Ir.binop -> bool = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

let neg_cmp : Ir.cmpop -> Ir.cmpop = function
  | Ir.Eq -> Ir.Ne | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge | Ir.Ge -> Ir.Lt
  | Ir.Le -> Ir.Gt | Ir.Gt -> Ir.Le
  | Ir.Ltu -> Ir.Geu | Ir.Geu -> Ir.Ltu

(* Add-chain flattening: decompose a tree of Add/Sub (children already
   simplified) into signed addend multisets plus a constant, counting
   [Sp _] leaves separately so SP-relative arithmetic folds to a single
   displaced [Sp] leaf.  Sound in two's complement: addition is
   associative/commutative and x - x = 0 under wraparound. *)
let rec addends (sign : int) (t : t) (pos, neg, c, spn) =
  match t with
  | Bin (Ir.Add, a, b) -> addends sign a (addends sign b (pos, neg, c, spn))
  | Bin (Ir.Sub, a, b) -> addends sign a (addends (-sign) b (pos, neg, c, spn))
  | Const k ->
    let c = if sign > 0 then Int32.add c k else Int32.sub c k in
    (pos, neg, c, spn)
  | Sp k ->
    let c =
      if sign > 0 then Int32.add c (Int32.of_int k)
      else Int32.sub c (Int32.of_int k)
    in
    (pos, neg, c, spn + sign)
  | t ->
    if sign > 0 then (t :: pos, neg, c, spn) else (pos, t :: neg, c, spn)

(* Multiset difference: cancel terms that appear on both sides. *)
let cancel (pos : t list) (neg : t list) : t list * t list =
  List.fold_left
    (fun (pos, neg) n ->
       let rec drop = function
         | [] -> None
         | p :: ps when p = n -> Some ps
         | p :: ps -> (match drop ps with
             | None -> None
             | Some ps' -> Some (p :: ps'))
       in
       match drop pos with
       | Some pos' -> (pos', neg)
       | None -> (pos, n :: neg))
    (pos, [])
    neg

let rebuild (pos, neg, c, spn) : t =
  (* A single net SP occurrence absorbs the constant into its
     displacement; other counts (0, or degenerate multiples) keep the
     base as explicit [Sp 0] addends. *)
  let pos, neg, c =
    if spn = 1 then (Sp (Int32.to_int c) :: pos, neg, 0l)
    else if spn = 0 then (pos, neg, c)
    else if spn > 1 then
      (List.init spn (fun _ -> Sp 0) @ pos, neg, c)
    else (pos, List.init (-spn) (fun _ -> Sp 0) @ neg, c)
  in
  let pos = List.sort compare pos in
  let neg = List.sort compare neg in
  match pos, neg with
  | [], [] -> Const c
  | _ ->
    let base, c =
      match pos with
      | [] -> (Const c, 0l)
      | p :: ps -> (List.fold_left (fun acc q -> Bin (Ir.Add, acc, q)) p ps, c)
    in
    let base = List.fold_left (fun acc n -> Bin (Ir.Sub, acc, n)) base neg in
    if c = 0l then base else Bin (Ir.Add, base, Const c)

let sort2 a b = if compare a b <= 0 then (a, b) else (b, a)

(* One simplification of [Bin (op, a, b)] with [a]/[b] already in normal
   form.  Every rule is value-preserving over all 32-bit inputs. *)
let simp_bin (op : Ir.binop) (a : t) (b : t) : t =
  match op, a, b with
  | _, Const x, Const y -> Const (Ir.eval_binop op x y)
  | (Ir.Add | Ir.Sub), _, _ ->
    let pos, neg, c, spn = addends 1 (Bin (op, a, b)) ([], [], 0l, 0) in
    let pos, neg = cancel pos neg in
    rebuild (pos, neg, c, spn)
  | (Ir.Shl | Ir.Lshr | Ir.Ashr), _, Const s
    when Int32.logand s 31l <> s ->
    Bin (op, a, Const (Int32.logand s 31l))
  | (Ir.Shl | Ir.Lshr | Ir.Ashr), _, Const 0l -> a
  | Ir.Mul, _, Const 0l | Ir.Mul, Const 0l, _ -> Const 0l
  | Ir.Mul, x, Const 1l | Ir.Mul, Const 1l, x -> x
  | Ir.And, _, Const 0l | Ir.And, Const 0l, _ -> Const 0l
  | Ir.And, x, Const (-1l) | Ir.And, Const (-1l), x -> x
  | Ir.And, x, y when x = y -> x
  | Ir.Or, x, Const 0l | Ir.Or, Const 0l, x -> x
  | Ir.Or, _, Const (-1l) | Ir.Or, Const (-1l), _ -> Const (-1l)
  | Ir.Or, x, y when x = y -> x
  | Ir.Xor, x, Const 0l | Ir.Xor, Const 0l, x -> x
  | Ir.Xor, x, y when x = y -> Const 0l
  (* xori cmp, 1 is how both back-ends negate a materialized compare *)
  | Ir.Xor, Cmp (c, x, y), Const 1l | Ir.Xor, Const 1l, Cmp (c, x, y) ->
    Cmp (neg_cmp c, x, y)
  | _ when commutative op ->
    let a, b = sort2 a b in
    Bin (op, a, b)
  | _ -> Bin (op, a, b)

let rec simp_cmp (op : Ir.cmpop) (a : t) (b : t) : t =
  match op, a, b with
  (* canonical direction: strict -> Lt, non-strict -> Ge *)
  | Ir.Gt, a, b -> simp_cmp Ir.Lt b a
  | Ir.Le, a, b -> simp_cmp Ir.Ge b a
  | _, Const x, Const y ->
    Const (if Ir.eval_cmpop op x y then 1l else 0l)
  (* comparing a (deterministic) term against itself is decided *)
  | _, a, b when a = b ->
    Const
      (match op with
       | Ir.Eq | Ir.Ge | Ir.Geu | Ir.Le -> 1l
       | Ir.Ne | Ir.Lt | Ir.Ltu | Ir.Gt -> 0l)
  (* sltiu rd, x, 1 is the "x == 0" idiom; sltu rd, x0, x is "x != 0" *)
  | Ir.Ltu, x, Const 1l -> simp_cmp Ir.Eq x (Const 0l)
  | Ir.Ltu, Const 0l, x -> simp_cmp Ir.Ne x (Const 0l)
  (* the Geu duals reach the IR through the wasm compares (le_u/ge_u
     lower to swapped Geu): x >=u 1 is "x != 0", 0 >=u x is "x == 0",
     and nothing is unsigned-below zero *)
  | Ir.Geu, x, Const 1l -> simp_cmp Ir.Ne x (Const 0l)
  | Ir.Geu, Const 0l, x -> simp_cmp Ir.Eq x (Const 0l)
  | Ir.Geu, _, Const 0l -> Const 1l
  | Ir.Ltu, _, Const 0l -> Const 0l
  (* a compare is already 0/1, so testing it against zero collapses *)
  | Ir.Ne, Cmp _, Const 0l | Ir.Ne, Const 0l, Cmp _ ->
    (match a with Cmp _ -> a | _ -> b)
  | Ir.Eq, Cmp (c, x, y), Const 0l | Ir.Eq, Const 0l, Cmp (c, x, y) ->
    Cmp (neg_cmp c, x, y)
  (* ... and testing it against one *)
  | Ir.Eq, (Cmp _ as c), Const 1l | Ir.Eq, Const 1l, (Cmp _ as c) -> c
  | Ir.Ne, Cmp (c, x, y), Const 1l | Ir.Ne, Const 1l, Cmp (c, x, y) ->
    Cmp (neg_cmp c, x, y)
  (* xor feeds equality tests on both back-ends *)
  | Ir.Eq, Bin (Ir.Xor, x, y), Const 0l
  | Ir.Eq, Const 0l, Bin (Ir.Xor, x, y) -> simp_cmp Ir.Eq x y
  | Ir.Ne, Bin (Ir.Xor, x, y), Const 0l
  | Ir.Ne, Const 0l, Bin (Ir.Xor, x, y) -> simp_cmp Ir.Ne x y
  | (Ir.Eq | Ir.Ne), _, _ ->
    let a, b = sort2 a b in
    Cmp (op, a, b)
  | _ -> Cmp (op, a, b)

(* One full bottom-up pass. *)
let rec norm1 (t : t) : t =
  match t with
  | Const _ | Param _ | Ra | Reg0 _ | Sp _ | Join _ | JoinM _ | Uninit _
  | Dead _ | Retcall _ -> t
  | Bin (op, a, b) -> simp_bin op (norm1 a) (norm1 b)
  | Mulh (a, b) ->
    let a, b = sort2 (norm1 a) (norm1 b) in
    (match a, b with
     | Const x, Const y ->
       Const (Straight_isa.Isa.eval_alu Straight_isa.Isa.Mulh x y)
     | _ -> Mulh (a, b))
  | Cmp (op, a, b) -> simp_cmp op (norm1 a) (norm1 b)
  | Load (v, a) -> Load (v, norm1 a)

(* Rules can cascade (a fold exposing an identity exposing a flatten),
   so iterate to a fixpoint; the cap is belt-and-braces against a
   rewrite cycle none of the rules should form, and idempotence is
   QCheck-pinned. *)
let normalize (t : t) : t =
  let rec fix n t =
    if n = 0 then t
    else
      let t' = norm1 t in
      if t' = t then t else fix (n - 1) t'
  in
  fix 8 t

(* ---------- rendering (for findings) ---------- *)

let binop_name : Ir.binop -> string = function
  | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul"
  | Ir.Div -> "div" | Ir.Divu -> "divu" | Ir.Rem -> "rem"
  | Ir.Remu -> "remu" | Ir.And -> "and" | Ir.Or -> "or"
  | Ir.Xor -> "xor" | Ir.Shl -> "shl" | Ir.Lshr -> "lshr"
  | Ir.Ashr -> "ashr"

let cmpop_name : Ir.cmpop -> string = function
  | Ir.Eq -> "eq" | Ir.Ne -> "ne" | Ir.Lt -> "lt" | Ir.Le -> "le"
  | Ir.Gt -> "gt" | Ir.Ge -> "ge" | Ir.Ltu -> "ltu" | Ir.Geu -> "geu"

(* Compact bounded rendering: deep subterms elide to "..", keeping
   finding messages readable on pathological terms. *)
let to_string ?(depth = 6) (t : t) : string =
  let buf = Buffer.create 64 in
  let rec go d t =
    if d = 0 then Buffer.add_string buf ".."
    else
      match t with
      | Const c -> Buffer.add_string buf (Int32.to_string c)
      | Param n -> Buffer.add_string buf (Printf.sprintf "arg%d" n)
      | Ra -> Buffer.add_string buf "ra0"
      | Reg0 r -> Buffer.add_string buf (Printf.sprintf "x%d@entry" r)
      | Sp 0 -> Buffer.add_string buf "sp0"
      | Sp k -> Buffer.add_string buf (Printf.sprintf "sp0%+d" k)
      | Join (bid, v) ->
        Buffer.add_string buf (Printf.sprintf "phi(bb%d,v%d)" bid v)
      | JoinM (bid, off) ->
        Buffer.add_string buf (Printf.sprintf "phimem(bb%d,%d)" bid off)
      | Uninit off -> Buffer.add_string buf (Printf.sprintf "uninit[%d]" off)
      | Dead (src, lane) ->
        Buffer.add_string buf (Printf.sprintf "dead(%d,%d)" src lane)
      | Retcall v -> Buffer.add_string buf (Printf.sprintf "ret#%d" v)
      | Bin (op, a, b) ->
        Buffer.add_string buf (binop_name op);
        Buffer.add_char buf '(';
        go (d - 1) a;
        Buffer.add_char buf ',';
        go (d - 1) b;
        Buffer.add_char buf ')'
      | Mulh (a, b) ->
        Buffer.add_string buf "mulh(";
        go (d - 1) a;
        Buffer.add_char buf ',';
        go (d - 1) b;
        Buffer.add_char buf ')'
      | Cmp (op, a, b) ->
        Buffer.add_string buf (cmpop_name op);
        Buffer.add_char buf '(';
        go (d - 1) a;
        Buffer.add_char buf ',';
        go (d - 1) b;
        Buffer.add_char buf ')'
      | Load (v, a) ->
        Buffer.add_string buf (Printf.sprintf "mem%d[" v);
        go (d - 1) a;
        Buffer.add_char buf ']'
  in
  go depth t;
  Buffer.contents buf
