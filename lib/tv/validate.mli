(** Per-function symbolic translation validation for both back-ends.

    Both sides of a compilation — the SSA IR and the decoded, linked
    machine code — are symbolically executed into the {!Term} algebra
    over matched control-flow paths (blocks are located through the
    [".L<fn>_<bid>"] labels both back-ends keep in the image's symbol
    table).  Every observable must normalize to the same term: the
    return value, non-frame store address/value pairs in program order,
    call targets and argument vectors, and the machine-level return
    protocol (return address, SP restoration, riscv callee-saved
    registers).  The STRAIGHT side threads real register-distance
    semantics through a symbolic result ring, so distance bugs read the
    wrong term rather than slipping through.

    Loops are handled by joining states at merge blocks: lanes that
    differ but correlate to the same IR value become a shared
    [Join] leaf, everything else is havocked, and the finite lattice
    (concrete -> Join -> Dead) makes the fixpoint terminate.

    Disagreements become [Error] findings ([tv-retval], [tv-store],
    [tv-call], [tv-branch], [tv-cfg], [tv-event-order], [tv-ret-addr],
    [tv-sp], [tv-callee-saved], [tv-decode]).  A function that defeats
    the validator (budget exhaustion, missing labels, out-of-repertoire
    instructions) yields an explicit [Info] [tv-abstain] finding —
    never a silent pass.  Soundness caveat: frame slots are assumed
    disjoint from callee-reachable memory, matching both back-ends'
    stack discipline. *)

module Ir = Ssa_ir.Ir
module Image = Assembler.Image

type target = Straight | Riscv

val target_name : target -> string

type finding = Lint_report.finding

val clone_program : Ir.program -> Ir.program
(** Deep-copy the mutable function skeletons (both back-ends mutate the
    IR they compile); instruction lists and data are shared. *)

val validate_image :
  ?max_dist:int -> target:target -> Ir.program -> Image.t -> finding list
(** Validate a linked image against the (post-compilation) program it
    was produced from.  [prog] must be the exact IR the back-end
    compiled — i.e. after its in-place mutations — which is what
    {!validate_straight} / {!validate_riscv} arrange. *)

val validate_straight :
  ?config:Straight_cc.Codegen.config -> Ir.program -> finding list
(** Clone, compile with [config] (default {!Straight_cc.Codegen.default_config}),
    link, and validate.  The input program is left untouched. *)

val validate_riscv : Ir.program -> finding list

(** {1 Seeded mutation harness}

    Proof that the validator actually rejects broken code: compile a
    fresh program, apply one seeded single-instruction mutation of a
    real codegen-bug shape — flip an operand distance by one, drop an
    RMOV, swap the operands of a non-commutative ALU op or a store —
    relink, and validate.  [m_caught] records whether an [Error]
    finding names the mutated function. *)

type mutation = {
  m_desc : string;
  m_func : string;
  m_caught : bool;
  m_findings : finding list;
  m_images : (Image.t * Image.t) option;
      (** [(original, mutated)] linked images, when the mutation still
          assembled — the harness runs both on the ISS to separate
          genuine validator misses from semantically invisible
          mutations *)
}

val mutation_trial :
  ?config:Straight_cc.Codegen.config ->
  fresh:(unit -> Ir.program) -> seed:int -> unit -> mutation option
(** [None] when the generated program offers no mutation site.  Site
    selection is deterministic in [seed]. *)
