(** The shared term algebra of the translation validator: both the SSA
    IR and the decoded machine code symbolically evaluate into this one
    language, and two executions agree exactly when their observables
    {!normalize} to equal terms.  Normalization is value-preserving
    ([eval t env = eval (normalize t) env] for every environment —
    QCheck-pinned) and incomplete in the safe direction only: it can
    fail to identify equal values, never conflate different ones. *)

module Ir = Ssa_ir.Ir

type t =
  | Const of int32
  | Param of int          (** the n-th IR parameter at function entry *)
  | Ra                    (** the incoming return address *)
  | Reg0 of int           (** riscv: register r's value at entry *)
  | Sp of int             (** SP at function entry, plus a byte offset *)
  | Join of int * int
      (** merge havoc correlated to IR value: [(bid, v)] names "the
          value phi-web [v] carries into merge block [bid]" on both the
          IR and machine side, so correlated unknowns stay equal *)
  | JoinM of int * int    (** merge havoc of frame slot [(bid, offset)] *)
  | Uninit of int         (** frame slot never stored, at byte offset *)
  | Dead of int * int     (** uncorrelated havoc: [(source id, lane)] *)
  | Bin of Ir.binop * t * t
  | Mulh of t * t         (** high word of the signed 64-bit product *)
  | Cmp of Ir.cmpop * t * t  (** [1l] when the comparison holds *)
  | Load of int * t       (** uninterpreted load: (memory version, addr) *)
  | Retcall of int        (** return value of the call at memory version *)

type env = {
  leaf : t -> int32;
      (** concrete value of an opaque leaf; [Sp 0] is the SP base *)
  load : int -> int32 -> int32;
      (** concrete value of an uninterpreted load, by (version, addr) *)
}

val eval : env -> t -> int32
(** Concrete evaluation under an environment (the QCheck oracle). *)

val normalize : t -> t
(** Canonicalize: constant folding, commutative argument ordering,
    add-chain flattening with SP-displacement and [x - x] cancellation,
    shift/mask and and/or/xor identities, compare canonicalization
    (strict -> [Lt], non-strict -> [Ge], the [sltiu x,1] / [xori cmp,1]
    / [xor]-equality idioms).  Idempotent and value-preserving. *)

val neg_cmp : Ir.cmpop -> Ir.cmpop
(** The complementary comparison ([Eq] <-> [Ne], [Lt] <-> [Ge], ...). *)

val to_string : ?depth:int -> t -> string
(** Compact rendering for findings; subterms deeper than [depth]
    (default 6) elide to [".."]. *)
