(** The STRAIGHT out-of-order pipeline (the paper's Fig. 2): the shared
    engine instantiated with RP-based operand determination (Fig. 3), a
    6-stage front end, and single-ROB-read recovery (Fig. 4). *)

val static_uop : Assembler.Image.t -> int -> Iss.Trace.uop option
(** Decode a static instruction for wrong-path fetch ([None] at HALT or
    outside .text). *)

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;                (** the program's console output *)
  dist_histogram : int array;     (** source-distance histogram (Fig. 16) *)
}

val run :
  ?max_insns:int -> ?check:bool -> ?max_dist:int ->
  Ooo_common.Params.t -> Assembler.Image.t -> result
(** Run the functional simulator to obtain the correct-path trace, then
    the timing model over it.  [check] (default [true]) arms the lockstep
    golden-model checker against the ISS trace; [max_dist] (default
    {!Straight_isa.Isa.max_dist}) bounds checked source distances.
    @raise Diag.Error on simulator deadlock or checker divergence. *)
