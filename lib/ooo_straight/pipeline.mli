(** The STRAIGHT out-of-order pipeline (the paper's Fig. 2): the shared
    engine instantiated with RP-based operand determination (Fig. 3), a
    6-stage front end, and single-ROB-read recovery (Fig. 4). *)

val static_uop : Assembler.Image.t -> int -> Iss.Trace.uop option
(** Decode a static instruction for wrong-path fetch ([None] at HALT or
    outside .text). *)

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;                (** the program's console output *)
  dist_histogram : int array;     (** source-distance histogram (Fig. 16) *)
}

(** A live run: the cycle-level engine plus the ISS result it replays.
    The functional simulation always completes first (the engine is
    trace-driven), so the session exposes the whole functional outcome
    from cycle 0 — the snapshot layer fingerprints checkpoints with it. *)
type session = {
  engine : Ooo_common.Engine.t;
  run_info : Iss.Trace.run;
}

val start :
  ?max_insns:int -> ?check:bool -> ?max_dist:int ->
  Ooo_common.Params.t -> Assembler.Image.t -> session
(** Run the functional simulator and stand up the timing model at
    cycle 0.  [check] (default [true]) arms the lockstep golden-model
    checker against the ISS trace; [max_dist] (default
    {!Straight_isa.Isa.max_dist}) bounds checked source distances.
    Advance with {!Ooo_common.Engine.step} until
    {!Ooo_common.Engine.finished}, then call {!finish}. *)

val start_region :
  ?max_insns:int -> ?check:bool -> ?max_dist:int -> ?warm:bool ->
  from:int -> ?len:int ->
  Ooo_common.Params.t -> Assembler.Image.t -> session
(** Fast-forward: run the functional simulator over the first [from]
    retirements at full speed — functionally warming the caches, branch
    predictor and RAS unless [warm] is [false] — then stand up the
    timing model over the next [len] retirements only (to the end of the
    program when omitted), with the warmed tables handed to the engine.
    [run_info.trace] holds just the region's uops; the lockstep checker
    (when [check]) validates the region commit stream against it.
    @raise Diag.Error code [Config_error] when [from] is at or past the
    end of the program. *)

val resume :
  ?max_insns:int -> ?check:bool -> ?max_dist:int ->
  Ooo_common.Params.t -> Assembler.Image.t ->
  Ooo_common.Bin.reader -> session
(** Like {!start}, but the engine state comes from a checkpoint image
    instead of cycle 0.  The ISS re-runs deterministically; the caller
    (the snapshot layer) is responsible for checking that params and the
    regenerated trace match the checkpoint.
    @raise Ooo_common.Bin.Corrupt on a malformed or mismatched image. *)

val finish : session -> result
(** Run the checker's end-of-run validation and freeze statistics. *)

val run :
  ?max_insns:int -> ?check:bool -> ?max_dist:int ->
  Ooo_common.Params.t -> Assembler.Image.t -> result
(** Run the functional simulator to obtain the correct-path trace, then
    the timing model over it — [start] stepped to completion.  [check]
    (default [true]) arms the lockstep golden-model checker against the
    ISS trace; [max_dist] (default {!Straight_isa.Isa.max_dist}) bounds
    checked source distances.
    @raise Diag.Error on simulator deadlock or checker divergence. *)
