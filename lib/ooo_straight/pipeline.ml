(* The STRAIGHT out-of-order pipeline (Fig. 2): the shared engine
   instantiated with RP-based operand determination, a 6-stage front end,
   and single-read recovery. *)

module Isa = Straight_isa.Isa
module Encoding = Straight_isa.Encoding
module Image = Assembler.Image
module Trace = Iss.Trace

(* Decode a static instruction for wrong-path fetch: no dynamic outcomes,
   only the statically known structure. *)
let static_uop (image : Image.t) pc : Trace.uop option =
  match Image.fetch_word image pc with
  | None -> None
  | Some w ->
    (match Encoding.decode w with
     | None -> None
     | Some insn ->
       let fu =
         match Isa.kind insn with
         | Isa.Kmul -> Trace.FU_mul
         | Isa.Kdiv -> Trace.FU_div
         | Isa.Kload -> Trace.FU_load
         | Isa.Kstore -> Trace.FU_store
         | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
         | Isa.Kalu | Isa.Krmov | Isa.Knop -> Trace.FU_alu
         | Isa.Khalt -> Trace.FU_alu
       in
       (match insn with
        | Isa.Halt -> None (* wrong-path fetch stops at HALT *)
        | _ ->
          let ctrl =
            match insn with
            | Isa.Bez (_, off) | Isa.Bnz (_, off) ->
              Trace.Cond { taken = false; target = pc + (4 * off) }
            | Isa.J off ->
              Trace.Uncond
                { target = pc + (4 * off); is_call = false; is_ret = false }
            | Isa.Jal off ->
              Trace.Uncond
                { target = pc + (4 * off); is_call = true; is_ret = false }
            | Isa.Jr _ ->
              Trace.Uncond { target = -1; is_call = false; is_ret = true }
            | _ -> Trace.Not_ctrl
          in
          Some
            { Trace.pc;
              fu;
              srcs_dist =
                Array.of_list (List.filter (fun d -> d > 0) (Isa.sources insn));
              srcs_reg = [||];
              dest_reg = 0;
              has_dest = true;
              is_rmov = (match insn with Isa.Rmov _ -> true | _ -> false);
              is_nop = (match insn with Isa.Nop -> true | _ -> false);
              is_spadd = (match insn with Isa.Spadd _ -> true | _ -> false);
              mem_addr = 0;
              ctrl }))

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;
  dist_histogram : int array;
}

(* [run params image] runs the functional simulator to obtain the
   correct-path trace and then the timing model over it.  The ISS trace
   doubles as the golden model: unless [check] is false, a lockstep
   checker validates every commit against it. *)
let run ?(max_insns = 50_000_000) ?(check = true) ?(max_dist = Isa.max_dist)
    (params : Ooo_common.Params.t) (image : Image.t) : result =
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.collect_trace = true;
                collect_dist = true; max_insns }
      image
  in
  let checker =
    if check then
      Some
        (Ooo_common.Checker.create ~max_dist
           ~rename:params.Ooo_common.Params.rename ~trace:r.Trace.trace ())
    else None
  in
  let stats =
    Ooo_common.Engine.run params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker ()
  in
  { stats; output = r.Trace.output; dist_histogram = r.Trace.dist_histogram }
