(* The STRAIGHT out-of-order pipeline (Fig. 2): the shared engine
   instantiated with RP-based operand determination, a 6-stage front end,
   and single-read recovery. *)

module Isa = Straight_isa.Isa
module Encoding = Straight_isa.Encoding
module Image = Assembler.Image
module Trace = Iss.Trace

(* Decode a static instruction for wrong-path fetch: no dynamic outcomes,
   only the statically known structure. *)
let static_uop (image : Image.t) pc : Trace.uop option =
  match Image.fetch_word image pc with
  | None -> None
  | Some w ->
    (match Encoding.decode w with
     | None -> None
     | Some insn ->
       let fu =
         match Isa.kind insn with
         | Isa.Kmul -> Trace.FU_mul
         | Isa.Kdiv -> Trace.FU_div
         | Isa.Kload -> Trace.FU_load
         | Isa.Kstore -> Trace.FU_store
         | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
         | Isa.Kalu | Isa.Krmov | Isa.Knop -> Trace.FU_alu
         | Isa.Khalt -> Trace.FU_alu
       in
       (match insn with
        | Isa.Halt -> None (* wrong-path fetch stops at HALT *)
        | _ ->
          let ctrl =
            match insn with
            | Isa.Bez (_, off) | Isa.Bnz (_, off) ->
              Trace.Cond { taken = false; target = pc + (4 * off) }
            | Isa.J off ->
              Trace.Uncond
                { target = pc + (4 * off); is_call = false; is_ret = false }
            | Isa.Jal off ->
              Trace.Uncond
                { target = pc + (4 * off); is_call = true; is_ret = false }
            | Isa.Jr _ ->
              Trace.Uncond { target = -1; is_call = false; is_ret = true }
            | _ -> Trace.Not_ctrl
          in
          Some
            { Trace.pc;
              fu;
              srcs_dist =
                Array.of_list (List.filter (fun d -> d > 0) (Isa.sources insn));
              srcs_reg = [||];
              dest_reg = 0;
              has_dest = true;
              is_rmov = (match insn with Isa.Rmov _ -> true | _ -> false);
              is_nop = (match insn with Isa.Nop -> true | _ -> false);
              is_spadd = (match insn with Isa.Spadd _ -> true | _ -> false);
              mem_addr = 0;
              ctrl }))

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;
  dist_histogram : int array;
}

(* A live run: the cycle-level engine plus the ISS result it replays.
   The ISS always runs to completion first (the engine is trace-driven),
   so a session holds the whole functional outcome from the start; the
   snapshot layer uses that to fingerprint checkpoints. *)
type session = {
  engine : Ooo_common.Engine.t;
  run_info : Trace.run;
}

let iss_run ~max_insns image =
  Iss.Straight_iss.run
    ~config:{ Iss.Straight_iss.collect_trace = true;
              collect_dist = true; max_insns }
    image

(* The ISS trace doubles as the golden model: unless [check] is false, a
   lockstep checker validates every commit against it. *)
let make_checker ~check ~max_dist (params : Ooo_common.Params.t)
    (r : Trace.run) =
  if check then
    Some
      (Ooo_common.Checker.create ~max_dist
         ~rename:params.Ooo_common.Params.rename ~trace:r.Trace.trace ())
  else None

let start ?(max_insns = 50_000_000) ?(check = true) ?(max_dist = Isa.max_dist)
    (params : Ooo_common.Params.t) (image : Image.t) : session =
  let r = iss_run ~max_insns image in
  let checker = make_checker ~check ~max_dist params r in
  let engine =
    Ooo_common.Engine.create params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker ()
  in
  { engine; run_info = r }

(* [start_region ~from ?len] fast-forwards functionally over the first
   [from] retirements — warming caches/predictors along the way unless
   [warm] is false — and stands up the timing model over the next [len]
   retirements only (to the end of the program when [len] is omitted).
   The engine starts at cycle 0 on the sub-trace: RP operands whose
   producers precede the region resolve as already-committed, exactly as
   they would mid-flight. *)
let start_region ?(max_insns = 50_000_000) ?(check = true)
    ?(max_dist = Isa.max_dist) ?(warm = true) ~(from : int) ?len
    (params : Ooo_common.Params.t) (image : Image.t) : session =
  let stop = match len with None -> max_int | Some l -> from + l in
  let w = if warm then Some (Ooo_common.Warm.create params) else None in
  let buf = ref [] in
  let on_retire idx u =
    if idx < from then
      (match w with Some w -> Ooo_common.Warm.observe w u | None -> ())
    else if idx < stop then buf := u :: !buf
  in
  let s =
    Iss.Straight_iss.start
      ~config:{ Iss.Straight_iss.collect_trace = false;
                collect_dist = false; max_insns }
      ~on_retire image
  in
  Iss.Straight_iss.run_session ~until:stop s;
  let r0 = Iss.Straight_iss.finish s in
  let r = { r0 with Trace.trace = Array.of_list (List.rev !buf) } in
  if Array.length r.Trace.trace = 0 then
    Diag.error Diag.Config_error
      "region start %d is past the end of the run (%d retired)" from
      r.Trace.retired;
  let checker = make_checker ~check ~max_dist params r in
  let engine =
    Ooo_common.Engine.create params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker ?warm:w ()
  in
  { engine; run_info = r }

let resume ?(max_insns = 50_000_000) ?(check = true) ?(max_dist = Isa.max_dist)
    (params : Ooo_common.Params.t) (image : Image.t)
    (reader : Ooo_common.Bin.reader) : session =
  let r = iss_run ~max_insns image in
  let checker = make_checker ~check ~max_dist params r in
  let engine =
    Ooo_common.Engine.restore params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker reader
  in
  { engine; run_info = r }

let finish (s : session) : result =
  { stats = Ooo_common.Engine.finish s.engine;
    output = s.run_info.Trace.output;
    dist_histogram = s.run_info.Trace.dist_histogram }

let run ?max_insns ?check ?max_dist (params : Ooo_common.Params.t)
    (image : Image.t) : result =
  let s = start ?max_insns ?check ?max_dist params image in
  while not (Ooo_common.Engine.finished s.engine) do
    Ooo_common.Engine.step s.engine
  done;
  finish s
