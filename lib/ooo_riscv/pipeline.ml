(* The superscalar RV32IM baseline pipeline: the shared engine instantiated
   with RAM-based RMT renaming, an 8-stage front end, and ROB-walk
   misprediction recovery (Section V-A). *)

module Isa = Riscv_isa.Isa
module Encoding = Riscv_isa.Encoding
module Image = Assembler.Image
module Trace = Iss.Trace

let static_uop (image : Image.t) pc : Trace.uop option =
  match Image.fetch_word image pc with
  | None -> None
  | Some w ->
    (match Encoding.decode w with
     | None -> None
     | Some insn ->
       let fu =
         match Isa.kind insn with
         | Isa.Kmul -> Trace.FU_mul
         | Isa.Kdiv -> Trace.FU_div
         | Isa.Kload -> Trace.FU_load
         | Isa.Kstore -> Trace.FU_store
         | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
         | Isa.Kalu -> Trace.FU_alu
         | Isa.Khalt -> Trace.FU_alu
       in
       (match insn with
        | Isa.Ebreak -> None
        | _ ->
          let ctrl =
            match insn with
            | Isa.Branch (_, _, _, off) ->
              Trace.Cond { taken = false; target = pc + off }
            | Isa.Jal (rd, off) ->
              Trace.Uncond
                { target = pc + off; is_call = rd = 1; is_ret = false }
            | Isa.Jalr (rd, rs1, _) ->
              Trace.Uncond
                { target = -1; is_call = rd = 1; is_ret = rd = 0 && rs1 = 1 }
            | _ -> Trace.Not_ctrl
          in
          let dest = match Isa.dest insn with Some r -> r | None -> 0 in
          Some
            { Trace.pc;
              fu;
              srcs_dist = [||];
              srcs_reg =
                Array.of_list (List.filter (fun r -> r <> 0) (Isa.sources insn));
              dest_reg = dest;
              has_dest = dest <> 0;
              is_rmov = false;
              is_nop = false;
              is_spadd = false;
              mem_addr = 0;
              ctrl }))

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;
}

(* A live run: the cycle-level engine plus the ISS result it replays
   (the ISS always runs to completion first — the engine is
   trace-driven). *)
type session = {
  engine : Ooo_common.Engine.t;
  run_info : Trace.run;
}

let iss_run ~max_insns image =
  Iss.Riscv_iss.run
    ~config:{ Iss.Riscv_iss.collect_trace = true; max_insns }
    image

(* The ISS trace doubles as the golden model: unless [check] is false, a
   lockstep checker validates every commit against it. *)
let make_checker ~check (params : Ooo_common.Params.t) (r : Trace.run) =
  if check then
    Some
      (Ooo_common.Checker.create
         ~rename:params.Ooo_common.Params.rename ~trace:r.Trace.trace ())
  else None

let start ?(max_insns = 50_000_000) ?(check = true)
    (params : Ooo_common.Params.t) (image : Image.t) : session =
  let r = iss_run ~max_insns image in
  let checker = make_checker ~check params r in
  let engine =
    Ooo_common.Engine.create params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker ()
  in
  { engine; run_info = r }

(* [start_region ~from ?len] fast-forwards functionally over the first
   [from] retirements — warming caches/predictors along the way unless
   [warm] is false — and stands up the timing model over the next [len]
   retirements only (to the end of the program when [len] is omitted).
   The renamer starts with a fresh RMT over the sub-trace: operands whose
   producers precede the region read the architectural file, exactly as
   they would mid-flight with the window drained. *)
let start_region ?(max_insns = 50_000_000) ?(check = true) ?(warm = true)
    ~(from : int) ?len (params : Ooo_common.Params.t) (image : Image.t)
    : session =
  let stop = match len with None -> max_int | Some l -> from + l in
  let w = if warm then Some (Ooo_common.Warm.create params) else None in
  let buf = ref [] in
  let on_retire idx u =
    if idx < from then
      (match w with Some w -> Ooo_common.Warm.observe w u | None -> ())
    else if idx < stop then buf := u :: !buf
  in
  let s =
    Iss.Riscv_iss.start
      ~config:{ Iss.Riscv_iss.collect_trace = false; max_insns }
      ~on_retire image
  in
  Iss.Riscv_iss.run_session ~until:stop s;
  let r0 = Iss.Riscv_iss.finish s in
  let r = { r0 with Trace.trace = Array.of_list (List.rev !buf) } in
  if Array.length r.Trace.trace = 0 then
    Diag.error Diag.Config_error
      "region start %d is past the end of the run (%d retired)" from
      r.Trace.retired;
  let checker = make_checker ~check params r in
  let engine =
    Ooo_common.Engine.create params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker ?warm:w ()
  in
  { engine; run_info = r }

let resume ?(max_insns = 50_000_000) ?(check = true)
    (params : Ooo_common.Params.t) (image : Image.t)
    (reader : Ooo_common.Bin.reader) : session =
  let r = iss_run ~max_insns image in
  let checker = make_checker ~check params r in
  let engine =
    Ooo_common.Engine.restore params ~trace:r.Trace.trace
      ~decode_static:(static_uop image) ?checker reader
  in
  { engine; run_info = r }

let finish (s : session) : result =
  { stats = Ooo_common.Engine.finish s.engine;
    output = s.run_info.Trace.output }

let run ?max_insns ?check (params : Ooo_common.Params.t) (image : Image.t)
    : result =
  let s = start ?max_insns ?check params image in
  while not (Ooo_common.Engine.finished s.engine) do
    Ooo_common.Engine.step s.engine
  done;
  finish s
