(** The superscalar RV32IM baseline pipeline: the shared engine
    instantiated with RAM-based RMT renaming, an 8-stage front end, and
    ROB-walk misprediction recovery (Section V-A). *)

val static_uop : Assembler.Image.t -> int -> Iss.Trace.uop option
(** Decode a static instruction for wrong-path fetch ([None] at EBREAK or
    outside .text). *)

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;
}

val run :
  ?max_insns:int -> ?check:bool ->
  Ooo_common.Params.t -> Assembler.Image.t -> result
(** Run the functional simulator to obtain the correct-path trace, then
    the timing model over it.  [check] (default [true]) arms the lockstep
    golden-model checker against the ISS trace.
    @raise Diag.Error on simulator deadlock or checker divergence. *)
