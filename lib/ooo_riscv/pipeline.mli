(** The superscalar RV32IM baseline pipeline: the shared engine
    instantiated with RAM-based RMT renaming, an 8-stage front end, and
    ROB-walk misprediction recovery (Section V-A). *)

val static_uop : Assembler.Image.t -> int -> Iss.Trace.uop option
(** Decode a static instruction for wrong-path fetch ([None] at EBREAK or
    outside .text). *)

type result = {
  stats : Ooo_common.Engine.stats;
  output : string;
}

(** A live run: the cycle-level engine plus the ISS result it replays
    (the functional simulation always completes first — the engine is
    trace-driven). *)
type session = {
  engine : Ooo_common.Engine.t;
  run_info : Iss.Trace.run;
}

val start :
  ?max_insns:int -> ?check:bool ->
  Ooo_common.Params.t -> Assembler.Image.t -> session
(** Run the functional simulator and stand up the timing model at
    cycle 0.  Advance with {!Ooo_common.Engine.step} until
    {!Ooo_common.Engine.finished}, then call {!finish}. *)

val start_region :
  ?max_insns:int -> ?check:bool -> ?warm:bool ->
  from:int -> ?len:int ->
  Ooo_common.Params.t -> Assembler.Image.t -> session
(** Fast-forward: run the functional simulator over the first [from]
    retirements at full speed — functionally warming the caches, branch
    predictor and RAS unless [warm] is [false] — then stand up the
    timing model over the next [len] retirements only (to the end of the
    program when omitted), with the warmed tables handed to the engine.
    [run_info.trace] holds just the region's uops; the lockstep checker
    (when [check]) validates the region commit stream against it.
    @raise Diag.Error code [Config_error] when [from] is at or past the
    end of the program. *)

val resume :
  ?max_insns:int -> ?check:bool ->
  Ooo_common.Params.t -> Assembler.Image.t ->
  Ooo_common.Bin.reader -> session
(** Like {!start}, but the engine state comes from a checkpoint image
    instead of cycle 0.  The ISS re-runs deterministically; the caller
    (the snapshot layer) is responsible for checking that params and the
    regenerated trace match the checkpoint.
    @raise Ooo_common.Bin.Corrupt on a malformed or mismatched image. *)

val finish : session -> result
(** Run the checker's end-of-run validation and freeze statistics. *)

val run :
  ?max_insns:int -> ?check:bool ->
  Ooo_common.Params.t -> Assembler.Image.t -> result
(** Run the functional simulator to obtain the correct-path trace, then
    the timing model over it — [start] stepped to completion.  [check]
    (default [true]) arms the lockstep golden-model checker.
    @raise Diag.Error on simulator deadlock or checker divergence. *)
